"""Monte-Carlo query estimation on fuzzy trees.

Exact possible-worlds evaluation enumerates ``2^n`` assignments; the
fuzzy evaluator is exact but its answer-combination step is exponential
in the events of an answer's DNF in the worst case.  Sampling gives a
third point on the cost/accuracy trade-off curve (benchmark E6): draw
assignments from the event table's product distribution, materialise
each sampled world, run the query, and count how often each answer
appears.

Estimates come with a standard error (binomial), so benchmarks can
report confidence intervals alongside the exact probabilities.

Two samplers live here.  :func:`estimate_query` is the benchmark-grade
*world* sampler: it materialises each sampled world and re-runs the
query (E6).  :func:`estimate_answers` is the serving-grade *anytime*
estimator behind ``ResultSet.estimate``: the match enumeration has
already produced each answer's DNF, so a sample only draws the
mentioned events and evaluates the DNFs directly — no tree
materialisation, no re-matching — and sampling stops as soon as every
answer's confidence interval is within ±ε, the deadline expires, or
the sample budget runs out.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from time import monotonic

from repro.core.fuzzy_tree import FuzzyTree
from repro.events.assignment import sample_assignment
from repro.tpwj.match import DEFAULT_CONFIG, MatchConfig, find_matches
from repro.tpwj.pattern import Pattern
from repro.tpwj.result import distinct_answers
from repro.trees.node import Node

__all__ = ["AnswerEstimate", "estimate_answers", "estimate_query"]


@dataclass(slots=True)
class AnswerEstimate:
    """A sampled answer: tree, estimated probability and standard error."""

    tree: Node
    probability: float
    stderr: float
    occurrences: int
    samples: int


def estimate_query(
    fuzzy: FuzzyTree,
    pattern: Pattern,
    samples: int = 1000,
    rng: random.Random | None = None,
    config: MatchConfig = DEFAULT_CONFIG,
) -> list[AnswerEstimate]:
    """Estimate the query-answer probabilities by world sampling.

    Returns estimates sorted by decreasing probability (ties broken by
    the answer's canonical form).  Answers never observed in a sample
    do not appear — callers comparing against exact results should
    treat missing answers as probability 0.
    """
    if samples < 1:
        raise ValueError("samples must be at least 1")
    rng = rng if rng is not None else random.Random(0)
    used = sorted(fuzzy.used_events())

    counts: dict[str, int] = {}
    trees: dict[str, Node] = {}
    for _ in range(samples):
        assignment = sample_assignment(fuzzy.events, rng, events=used)
        world = fuzzy.world(assignment)
        matches = find_matches(pattern, world, config)
        for key, answer in distinct_answers(world, matches).items():
            counts[key] = counts.get(key, 0) + 1
            trees.setdefault(key, answer)

    estimates: list[AnswerEstimate] = []
    for key, count in counts.items():
        p = count / samples
        stderr = math.sqrt(p * (1.0 - p) / samples)
        estimates.append(AnswerEstimate(trees[key], p, stderr, count, samples))
    estimates.sort(key=lambda e: (-e.probability, e.tree.canonical()))
    return estimates


def estimate_answers(
    groups,
    events,
    *,
    epsilon: float | None = None,
    deadline: float | None = None,
    rng: random.Random | None = None,
    confidence: float = 3.0,
    batch: int = 256,
    max_samples: int = 1_000_000,
) -> list[AnswerEstimate]:
    """Anytime Monte-Carlo pricing of already-enumerated answer groups.

    *groups* is a sequence of ``(tree, dnf)`` pairs — one per answer,
    as produced by grouping the match enumeration; *events* is the
    document's event table.  Each sample draws one assignment over the
    union of the DNFs' mentioned events and evaluates every group's DNF
    against it, so the per-sample cost is linear in the DNF sizes —
    independent of the Shannon expansion's blow-up, which is exactly
    the regime this estimator exists for.

    Sampling stops at the first of: every group's interval is tight
    (``confidence * stderr <= epsilon``, checked per batch), the
    *deadline* (seconds of sampling budget) expires, or *max_samples*
    is reached.  At least one batch always runs, so every estimate has
    a defined probability and standard error.  With neither *epsilon*
    nor *deadline* given, ``epsilon=0.05`` is assumed.

    The default ``rng`` is ``random.Random(0)``: every layer pricing
    the same groups with the same options draws the same samples —
    the cross-layer byte-parity contract extends to estimates.

    Returns one :class:`AnswerEstimate` per group (including
    never-observed ones, at probability 0), sorted by decreasing
    probability, ties by canonical form.
    """
    groups = list(groups)
    if not groups:
        return []
    rng = rng if rng is not None else random.Random(0)
    dnfs = [dnf for _, dnf in groups]
    mentioned: set = set()
    for dnf in dnfs:
        mentioned |= dnf.events()
    drawn = sorted(mentioned)
    target = 0.05 if epsilon is None and deadline is None else epsilon
    stop_at = None if deadline is None else monotonic() + deadline
    counts = [0] * len(groups)
    samples = 0
    while True:
        step = min(batch, max_samples - samples)
        if step <= 0:
            break
        for _ in range(step):
            assignment = sample_assignment(events, rng, events=drawn)
            for position, dnf in enumerate(dnfs):
                if dnf.satisfied_by(assignment):
                    counts[position] += 1
        samples += step
        if target is not None and all(
            confidence
            * math.sqrt((c / samples) * (1.0 - c / samples) / samples)
            <= target
            for c in counts
        ):
            break
        if stop_at is not None and monotonic() >= stop_at:
            break

    estimates: list[AnswerEstimate] = []
    for (tree, _), count in zip(groups, counts):
        p = count / samples
        stderr = math.sqrt(p * (1.0 - p) / samples)
        estimates.append(AnswerEstimate(tree, p, stderr, count, samples))
    estimates.sort(key=lambda e: (-e.probability, e.tree.canonical()))
    return estimates
