"""The fuzzy tree model — the paper's primary contribution (S6).

* :class:`FuzzyTree` / :class:`FuzzyNode` — the representation (slide 12);
* :func:`to_possible_worlds` / :func:`from_possible_worlds` — semantics
  and the expressiveness theorem (slide 12);
* :func:`query_fuzzy_tree` — direct query evaluation (slide 13);
* :func:`apply_update` — direct update application (slides 14–15);
* :func:`simplify` — fuzzy data simplification (slide 19);
* :func:`estimate_query` — Monte-Carlo approximation.
"""

from repro.core.aggregates import (
    expected_answers,
    expected_matches,
    match_count_distribution,
    probability_at_least,
)
from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree
from repro.core.montecarlo import AnswerEstimate, estimate_answers, estimate_query
from repro.core.query import (
    FuzzyAnswer,
    QueryRow,
    group_rows,
    iter_bounded_rows,
    iter_query_rows,
    match_condition,
    match_conditions,
    query_fuzzy_tree,
    topk_rows,
)
from repro.core.semantics import from_possible_worlds, to_possible_worlds
from repro.core.simplify import ALL_RULES, SimplifyReport, simplify
from repro.core.update import UpdateReport, apply_update

__all__ = [
    "FuzzyNode",
    "FuzzyTree",
    "to_possible_worlds",
    "from_possible_worlds",
    "FuzzyAnswer",
    "QueryRow",
    "query_fuzzy_tree",
    "iter_query_rows",
    "iter_bounded_rows",
    "topk_rows",
    "group_rows",
    "match_condition",
    "UpdateReport",
    "apply_update",
    "SimplifyReport",
    "simplify",
    "ALL_RULES",
    "AnswerEstimate",
    "estimate_answers",
    "estimate_query",
    "match_conditions",
    "expected_matches",
    "expected_answers",
    "match_count_distribution",
    "probability_at_least",
]
