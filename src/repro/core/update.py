"""Probabilistic updates directly on fuzzy trees (paper, slides 14–15).

The transaction's confidence ``c`` is materialised as a **fresh event**
``w`` with probability ``c`` (slide 15's ``w3``).  With the matches of
the transaction's query computed on the underlying tree — each match
``m`` carrying its existence condition ``γm`` (conjunction over the
mapped nodes and their ancestors) — the two elementary operations are:

* **Insertion** (slide 14: "no problem"): for every match, a copy of
  the subtree is attached under the anchor with root condition
  ``γm ∧ w`` — "conditions required for the query to match added to
  inserted nodes".

* **Deletion** (slide 14: "more problematic"): a target node ``n``
  survives only when *no* deleting match fires, i.e. under
  ``¬(⋁ γm ∧ w)``.  Conditions are conjunctions, so the complement is
  rewritten as a disjoint union of conjunctions
  (:func:`repro.events.dnf.complement_as_disjoint_conditions`) and
  ``n`` is replaced by one *survivor copy* per disjunct.  This is the
  exponential growth the paper warns about, and it reproduces slide 15
  exactly: replacing ``C`` (condition ``w2``) when ``B`` (``w1``) is
  present, with confidence 0.9 (event ``w3``), yields survivor copies
  ``C[¬w1, w2]`` and ``C[w1, w2, ¬w3]`` plus the inserted
  ``D[w1, w2, w3]``.

Operation order matches the deterministic ``τ`` of
:func:`repro.updates.transaction.apply_deterministic`: insertions
first, then deletions deepest-target-first — so the commuting diagram
of slide 14 closes (benchmark E3, property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from dataclasses import replace

from repro.analysis.instrumentation import counters
from repro.errors import UpdateError
from repro.events.condition import Condition
from repro.events.dnf import complement_as_disjoint_conditions
from repro.events.literal import Literal
from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree
from repro.core.query import match_conditions
from repro.tpwj.match import DEFAULT_CONFIG, MatchConfig, find_matches

__all__ = ["UpdateReport", "apply_update"]


@dataclass(slots=True)
class UpdateReport:
    """What an update application did (for logs, tests and benchmarks)."""

    matches: int = 0
    consistent_matches: int = 0
    confidence_event: str | None = None
    inserted_subtrees: int = 0
    inserted_nodes: int = 0
    skipped_insertions: int = 0
    deletion_targets: int = 0
    survivor_copies: int = 0
    survivor_nodes: int = 0
    applied: bool = False
    notes: list[str] = field(default_factory=list)


def apply_update(
    fuzzy: FuzzyTree,
    transaction,
    config: MatchConfig = DEFAULT_CONFIG,
    delta=None,
) -> UpdateReport:
    """Apply a probabilistic update transaction to *fuzzy*, in place.

    Returns an :class:`UpdateReport`.  When the query has no (possible)
    match, or the confidence is 0, the document is left untouched —
    mirroring the possible-worlds semantics where unselected worlds keep
    their probability and a 0-confidence update never applies.

    *delta*, when given, is a recorder with the
    :class:`~repro.engine.stats.StatsDelta` interface; every structural
    mutation (subtree attached/detached, child-count transition) is
    reported to it so callers can maintain document statistics without
    re-walking the tree.
    """
    from repro.updates.transaction import UpdateTransaction

    if not isinstance(transaction, UpdateTransaction):
        raise UpdateError(
            f"expected UpdateTransaction, got {type(transaction).__name__}"
        )

    report = UpdateReport()
    structural_config = (
        replace(config, honor_negation=False)
        if transaction.query.has_negation()
        else config
    )
    matches = find_matches(transaction.query, fuzzy.root, structural_config)
    report.matches = len(matches)

    # A match may hold under several disjoint conjunctive conditions
    # (exactly one with plain patterns; several when the query carries
    # negated subpatterns).  Downstream, each (match, piece) behaves
    # like an independent conjunctive match: in every world at most one
    # piece per match holds.
    match_infos: list[tuple] = []
    consistent = 0
    for match in matches:
        pieces = match_conditions(match)
        if not pieces:
            continue  # the match can fire in no world
        consistent += 1
        for piece in pieces:
            match_infos.append((match, piece))
    report.consistent_matches = consistent

    if not match_infos:
        report.notes.append("no possible match; document unchanged")
        return report
    if transaction.confidence == 0.0:
        report.notes.append("confidence 0; document unchanged")
        return report

    confidence_literal: Literal | None = None
    if transaction.confidence < 1.0:
        name = fuzzy.events.fresh(transaction.confidence)
        confidence_literal = Literal(name, True)
        report.confidence_event = name

    _apply_insertions(fuzzy, transaction, match_infos, confidence_literal, report, delta)
    _apply_deletions(fuzzy, transaction, match_infos, confidence_literal, report, delta)
    report.applied = True
    return report


def _with_confidence(condition: Condition, literal: Literal | None) -> Condition:
    return condition if literal is None else condition.with_literal(literal)


def _apply_insertions(
    fuzzy: FuzzyTree,
    transaction,
    match_infos: list[tuple],
    confidence_literal: Literal | None,
    report: UpdateReport,
    delta=None,
) -> None:
    for match, gamma in match_infos:
        for op in transaction.insertions:
            anchor = match.node_for(op.anchor)
            assert isinstance(anchor, FuzzyNode)
            if anchor.value is not None:
                # No mixed content: inserting under a valued leaf is a
                # defined no-op, mirroring apply_deterministic.
                report.skipped_insertions += 1
                continue
            condition = _with_confidence(gamma, confidence_literal)
            subtree = FuzzyNode.from_plain(op.subtree, condition=condition)
            children_before = len(anchor.children)
            anchor.add_child(subtree)
            if delta is not None:
                anchor_depth = anchor.depth()
                delta.record_subtree_added(subtree, anchor_depth + 1)
                delta.record_child_count_change(
                    anchor.label, children_before, children_before + 1
                )
            report.inserted_subtrees += 1
            report.inserted_nodes += subtree.size()
            counters.incr("core.update.inserted_nodes", subtree.size())


def _apply_deletions(
    fuzzy: FuzzyTree,
    transaction,
    match_infos: list[tuple],
    confidence_literal: Literal | None,
    report: UpdateReport,
    delta=None,
) -> None:
    # Group full deletion conditions (γm ∧ w) per target node.
    grouped: dict[int, tuple[FuzzyNode, list[Condition]]] = {}
    order: list[FuzzyNode] = []
    for match, gamma in match_infos:
        for op in transaction.deletions:
            target = match.node_for(op.target)
            assert isinstance(target, FuzzyNode)
            if target is fuzzy.root:
                raise UpdateError("cannot delete the document root")
            full = _with_confidence(gamma, confidence_literal)
            entry = grouped.get(id(target))
            if entry is None:
                grouped[id(target)] = (target, [full])
                order.append(target)
            else:
                entry[1].append(full)

    # Deepest targets first: a target nested inside another is split
    # before its ancestor clones the whole (already split) subtree.
    order.sort(key=lambda node: node.depth(), reverse=True)

    for target in order:
        _, deletion_conditions = grouped[id(target)]
        report.deletion_targets += 1
        parent = target.parent
        assert parent is not None  # root deletions rejected above
        pieces = complement_as_disjoint_conditions(deletion_conditions)
        target_depth = target.depth()
        children_before = len(parent.children)
        target.detach()
        if delta is not None:
            delta.record_subtree_removed(target, target_depth)
        for piece in pieces:
            combined = Condition(
                target.condition.literals | piece.literals, allow_inconsistent=True
            )
            if not combined.is_consistent:
                continue  # this survivor can exist in no world
            copy = target.clone()
            copy.condition = combined
            parent.add_child(copy)
            if delta is not None:
                delta.record_subtree_added(copy, target_depth)
            report.survivor_copies += 1
            report.survivor_nodes += copy.size()
            counters.incr("core.update.survivor_copies")
        if delta is not None:
            delta.record_child_count_change(
                parent.label, children_before, len(parent.children)
            )
