"""Possible-worlds semantics of fuzzy trees (paper, slide 12).

Two directions:

* :func:`to_possible_worlds` — the *semantics* arrow of the paper's
  commuting diagrams.  Rather than enumerating all ``2^n`` truth
  assignments, it Shannon-expands over the events of the *live*
  conditions only: a branch ends as soon as every node condition is
  decided, so the leaf count equals the number of condition-
  distinguishable world classes (e.g. a k-event first-success selector
  chain yields k+1 leaves, not ``2^k``).  Worlds with equal trees merge
  (normalization).

* :func:`from_possible_worlds` — the constructive half of the slide-12
  theorem ("the fuzzy tree model is as expressive as the possible
  worlds model"): given any normalized world set sharing a root label
  and value, build a fuzzy tree with fresh selector events whose
  semantics is exactly the input.  The construction uses the
  first-success encoding: world ``i`` is selected by
  ``¬x1 … ¬x(i-1) xi`` with ``P(xi) = pi / (1 - p1 - … - p(i-1))``.
"""

from __future__ import annotations

from repro.analysis.instrumentation import counters
from repro.errors import ReproError
from repro.events.condition import Condition
from repro.events.literal import Literal
from repro.events.table import EventTable
from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree
from repro.pworlds.worlds import PossibleWorlds, World
from repro.trees.node import Node

__all__ = ["to_possible_worlds", "from_possible_worlds"]

#: Guard for per-match event enumeration elsewhere in the library
#: (aggregates): 2^24 assignments is the accident threshold.
MAX_ENUMERATED_EVENTS = 24

#: Guard on the number of world classes :func:`to_possible_worlds` may
#: produce before concluding the instance needs sampling instead.
MAX_WORLD_CLASSES = 200_000


def to_possible_worlds(
    fuzzy: FuzzyTree, max_worlds: int = MAX_WORLD_CLASSES
) -> PossibleWorlds:
    """Enumerate the possible worlds of a fuzzy tree, exactly.

    Shannon expansion over live condition events: each branch fixes one
    event that some still-undecided condition mentions; a branch ends
    when every condition is decided.  The cost is proportional to the
    number of condition-distinguishable world classes (bounded by
    *max_worlds*), not to ``2^(#events)``.
    """
    conditioned = [
        node for node in fuzzy.iter_nodes() if not node.condition.is_true
    ]
    leaves: list[tuple[tuple[Condition | None, ...], float]] = []

    def solve(states: tuple[Condition | None, ...], weight: float) -> None:
        counts: dict[str, int] = {}
        for condition in states:
            if condition is not None and not condition.is_true:
                for event in condition.events():
                    counts[event] = counts.get(event, 0) + 1
        if not counts:
            counters.incr("semantics.world_classes")
            leaves.append((states, weight))
            if len(leaves) > max_worlds:
                raise ReproError(
                    f"refusing to enumerate more than {max_worlds} world "
                    "classes; use the Monte-Carlo estimator for larger instances"
                )
            return
        event = max(sorted(counts), key=lambda name: counts[name])
        probability = fuzzy.events.probability(event)
        for truth, branch_weight in ((True, probability), (False, 1.0 - probability)):
            if branch_weight == 0.0:
                continue
            restricted = tuple(
                None if condition is None else condition.restrict(event, truth)
                for condition in states
            )
            solve(restricted, weight * branch_weight)

    solve(tuple(node.condition for node in conditioned), 1.0)

    worlds: list[World] = []
    for states, weight in leaves:
        keep = {
            id(node)
            for node, condition in zip(conditioned, states)
            if condition is not None
        }
        worlds.append(World(_world_from_keep(fuzzy.root, keep), weight))
    return PossibleWorlds(worlds)


def _world_from_keep(root: FuzzyNode, keep: set[int]) -> Node:
    """Plain restriction of the tree to unconditioned/kept nodes."""

    def copy(node: FuzzyNode) -> Node:
        fresh = Node(node.label, node.value)
        for child in node.children:
            assert isinstance(child, FuzzyNode)
            if child.condition.is_true or id(child) in keep:
                fresh.add_child(copy(child))
        return fresh

    return copy(root)


def from_possible_worlds(
    worlds: PossibleWorlds,
    prefix: str = "v",
    tolerance: float = 1e-9,
) -> FuzzyTree:
    """Build a fuzzy tree whose semantics is the given world set.

    Requirements (and the reasons they exist):

    * probabilities must sum to 1 — the input must be a probability
      distribution over worlds;
    * all world roots must share the same label and value — a fuzzy
      tree has a single unconditioned root, so worlds can only differ
      below it.  (The paper's examples all share the document root.)

    The returned tree attaches, under the shared root, the children of
    each world's root guarded by that world's selector condition.
    """
    world_list = list(worlds)
    if not world_list:
        raise ReproError("cannot build a fuzzy tree from an empty world set")
    worlds.check_distribution(tolerance)

    first = world_list[0].tree
    for world in world_list[1:]:
        if world.tree.label != first.label or world.tree.value != first.value:
            raise ReproError(
                "all worlds must share the root label and value to be "
                f"representable with a single document root "
                f"({first.label!r}/{first.value!r} vs "
                f"{world.tree.label!r}/{world.tree.value!r})"
            )

    events = EventTable()
    selectors = _selector_conditions(
        [world.probability for world in world_list], events, prefix
    )

    root = FuzzyNode(first.label, first.value)
    for world, selector in zip(world_list, selectors):
        for child in world.tree.children:
            fuzzy_child = FuzzyNode.from_plain(child, condition=selector)
            root.add_child(fuzzy_child)
    return FuzzyTree(root, events)


def _selector_conditions(
    probabilities: list[float], events: EventTable, prefix: str
) -> list[Condition]:
    """Disjoint selector conditions with the given probabilities.

    First-success encoding: selector ``i`` is ``¬x1 … ¬x(i-1) xi`` (the
    last world needs no own event).  Conditional probabilities are
    clamped into [0, 1] to absorb floating-point drift.
    """
    count = len(probabilities)
    selectors: list[Condition] = []
    negatives: list[Literal] = []
    remaining = 1.0
    for index, probability in enumerate(probabilities):
        if index == count - 1:
            selectors.append(Condition(negatives))
            break
        conditional = probability / remaining if remaining > 0.0 else 0.0
        conditional = min(1.0, max(0.0, conditional))
        name = events.fresh(conditional, prefix=prefix)
        selectors.append(Condition(negatives + [Literal(name, True)]))
        negatives.append(Literal(name, False))
        remaining -= probability
    return selectors
