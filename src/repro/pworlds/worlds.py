"""The possible-worlds model — the paper's semantic foundation (slide 9).

A probabilistic document denotes a finite set of ``(tree, probability)``
pairs, one per possible world.  :class:`PossibleWorlds` stores such a
set, with *normalization* — merging worlds whose trees are equal as
unordered trees, summing their probabilities — applied on construction.

This model is deliberately naive: it is the ground truth against which
the fuzzy-tree implementation is validated (the commuting diagrams of
slides 13 and 14) and the baseline whose exponential cost motivates the
fuzzy-tree representation (benchmark E6).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

from repro.errors import ReproError
from repro.trees.node import Node

__all__ = ["PossibleWorlds", "World"]


class World:
    """One possible world: a data tree with its probability."""

    __slots__ = ("tree", "probability")

    def __init__(self, tree: Node, probability: float) -> None:
        if not isinstance(tree, Node):
            raise ReproError(f"world tree must be a Node, got {type(tree).__name__}")
        if isinstance(probability, bool) or not isinstance(probability, (int, float)):
            raise ReproError(f"world probability must be a number, got {probability!r}")
        probability = float(probability)
        if probability < 0.0 or math.isnan(probability):
            raise ReproError(f"world probability must be non-negative, got {probability}")
        self.tree = tree
        self.probability = probability

    def __repr__(self) -> str:
        return f"World(p={self.probability:.6g}, tree={self.tree.canonical()})"


class PossibleWorlds:
    """A normalized set of possible worlds.

    Construction merges worlds with equal trees (unordered-tree
    equality) by summing probabilities, drops zero-probability worlds,
    and orders worlds by decreasing probability (ties broken by the
    canonical form) so iteration is deterministic.
    """

    __slots__ = ("_worlds", "_by_canonical")

    def __init__(self, worlds: Iterable[World | tuple[Node, float]]) -> None:
        merged: dict[str, World] = {}
        for item in worlds:
            world = item if isinstance(item, World) else World(item[0], item[1])
            if world.probability == 0.0:
                continue
            key = world.tree.canonical()
            existing = merged.get(key)
            if existing is None:
                merged[key] = World(world.tree, world.probability)
            else:
                existing.probability += world.probability
        ordered = sorted(
            merged.items(), key=lambda kv: (-kv[1].probability, kv[0])
        )
        self._worlds = tuple(world for _key, world in ordered)
        self._by_canonical = {key: world for key, world in ordered}

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[World]:
        return iter(self._worlds)

    def __len__(self) -> int:
        return len(self._worlds)

    @property
    def worlds(self) -> tuple[World, ...]:
        return self._worlds

    def probability_of(self, tree: Node) -> float:
        """Probability mass of worlds whose tree equals *tree*."""
        world = self._by_canonical.get(tree.canonical())
        return world.probability if world is not None else 0.0

    def total_probability(self) -> float:
        return sum(world.probability for world in self._worlds)

    def check_distribution(self, tolerance: float = 1e-9) -> None:
        """Raise unless probabilities sum to 1 (true probabilistic documents)."""
        total = self.total_probability()
        if abs(total - 1.0) > tolerance:
            raise ReproError(
                f"possible-worlds probabilities sum to {total}, expected 1"
            )

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------

    def same_distribution(
        self, other: "PossibleWorlds", tolerance: float = 1e-9
    ) -> bool:
        """True when both sets give every tree the same probability."""
        keys = set(self._by_canonical) | set(other._by_canonical)
        for key in keys:
            mine = self._by_canonical.get(key)
            theirs = other._by_canonical.get(key)
            p_mine = mine.probability if mine else 0.0
            p_theirs = theirs.probability if theirs else 0.0
            if abs(p_mine - p_theirs) > tolerance:
                return False
        return True

    def difference_report(
        self, other: "PossibleWorlds", tolerance: float = 1e-9
    ) -> list[str]:
        """Human-readable per-tree probability differences (for test output)."""
        lines: list[str] = []
        keys = sorted(set(self._by_canonical) | set(other._by_canonical))
        for key in keys:
            mine = self._by_canonical.get(key)
            theirs = other._by_canonical.get(key)
            p_mine = mine.probability if mine else 0.0
            p_theirs = theirs.probability if theirs else 0.0
            if abs(p_mine - p_theirs) > tolerance:
                lines.append(f"{key}: {p_mine:.9f} vs {p_theirs:.9f}")
        return lines

    def __repr__(self) -> str:
        return f"PossibleWorlds({len(self._worlds)} worlds, total={self.total_probability():.6g})"
