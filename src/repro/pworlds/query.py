"""Query semantics on possible worlds (paper, slide 10).

Definition: for ``T = {(ti, pi)}``, the result of query ``Q`` over ``T``
is the normalization of ``{(t, pi) | t ∈ Q(ti)}`` — every answer tree
produced in world ``i`` is reported with that world's probability, and
normalization merges equal answer trees across worlds by summing.

``Q(ti)`` is a *set* of answer trees (one minimal subtree per match,
duplicates collapsed), so an answer's final probability is exactly the
probability that it belongs to the query result.
"""

from __future__ import annotations

from repro.analysis.instrumentation import counters
from repro.pworlds.worlds import PossibleWorlds, World
from repro.tpwj.match import DEFAULT_CONFIG, MatchConfig, find_matches
from repro.tpwj.pattern import Pattern
from repro.tpwj.result import distinct_answers

__all__ = ["query_possible_worlds"]


def query_possible_worlds(
    worlds: PossibleWorlds,
    pattern: Pattern,
    config: MatchConfig = DEFAULT_CONFIG,
) -> PossibleWorlds:
    """Evaluate a TPWJ query world-by-world and normalize the answers.

    The result is a :class:`PossibleWorlds` over *answer trees*; its
    total probability is the expected number of distinct answers, not
    necessarily 1 (an answer's probability is its marginal membership
    probability).
    """
    results: list[World] = []
    for world in worlds:
        counters.incr("pworlds.query.worlds")
        matches = find_matches(pattern, world.tree, config)
        for answer in distinct_answers(world.tree, matches).values():
            results.append(World(answer, world.probability))
    return PossibleWorlds(results)
