"""Possible-worlds model — substrate S3, the semantic foundation (slide 9).

* :class:`PossibleWorlds` / :class:`World` — normalized world sets;
* :func:`query_possible_worlds` — slide-10 query semantics;
* :func:`update_possible_worlds` — slide-10 update semantics.
"""

from repro.pworlds.query import query_possible_worlds
from repro.pworlds.update import update_possible_worlds
from repro.pworlds.worlds import PossibleWorlds, World

__all__ = [
    "PossibleWorlds",
    "World",
    "query_possible_worlds",
    "update_possible_worlds",
]
