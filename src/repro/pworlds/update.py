"""Update semantics on possible worlds (paper, slide 10).

Definition: the result of an update (query ``Q``, operations ``τ``)
with confidence ``c`` on a possible-worlds set ``T`` is the
normalization of::

    {(t, p) ∈ T | t is not selected by Q}
  ∪ {(τ(t), p·c)       | t is selected by Q}
  ∪ {(t, p·(1-c))      | t is selected by Q}

A world is *selected* when the query has at least one match in it; ``τ``
applies every operation for every match (see
:func:`repro.updates.transaction.apply_deterministic`).
"""

from __future__ import annotations

from repro.analysis.instrumentation import counters
from repro.pworlds.worlds import PossibleWorlds, World
from repro.tpwj.match import DEFAULT_CONFIG, MatchConfig, find_matches
from repro.updates.transaction import UpdateTransaction, apply_deterministic

__all__ = ["update_possible_worlds"]


def update_possible_worlds(
    worlds: PossibleWorlds,
    transaction: UpdateTransaction,
    config: MatchConfig = DEFAULT_CONFIG,
) -> PossibleWorlds:
    """Apply a probabilistic update transaction world-by-world.

    Probability mass is conserved: the result's total equals the
    input's (each selected world splits into two pieces whose
    probabilities sum to the original).
    """
    confidence = transaction.confidence
    results: list[World] = []
    for world in worlds:
        counters.incr("pworlds.update.worlds")
        matches = find_matches(transaction.query, world.tree, config)
        if not matches:
            results.append(World(world.tree, world.probability))
            continue
        counters.incr("pworlds.update.selected")
        updated = apply_deterministic(transaction, world.tree, matches, config)
        if confidence > 0.0:
            results.append(World(updated, world.probability * confidence))
        if confidence < 1.0:
            results.append(World(world.tree, world.probability * (1.0 - confidence)))
    return PossibleWorlds(results)
