"""Workload generators — substrate S9 (paper, slide 2 motivation).

* :mod:`repro.workloads.generator` — random fuzzy documents, matching
  queries, and applicable update transactions (seeded);
* :class:`ExtractionScenario` — information-extraction module stream;
* :class:`CleaningScenario` / :class:`MatchingScenario` — data-cleaning
  and schema-matching module streams.
"""

from repro.workloads.cleaning import CleaningScenario, MatchingScenario
from repro.workloads.extraction import ExtractionScenario
from repro.workloads.generator import (
    FuzzyWorkloadConfig,
    random_fuzzy_tree,
    random_query_for,
    random_update_for,
)

__all__ = [
    "FuzzyWorkloadConfig",
    "random_fuzzy_tree",
    "random_query_for",
    "random_update_for",
    "ExtractionScenario",
    "CleaningScenario",
    "MatchingScenario",
]
