"""Information-extraction module simulator (paper, slide 2).

The paper motivates probabilistic XML with pipelines whose modules emit
facts *with a confidence*: information extraction, NLP, data cleaning,
schema matching.  This scenario simulates the canonical one — an IE
system populating a person directory:

* the warehouse starts from a small certain skeleton
  (``directory/person{name}`` entries);
* extractor modules stream probabilistic updates: "person X has email
  E" (insertion, confidence ~0.7–0.95), "person X works at O"
  (insertion), and corrections "X's phone record is wrong" (deletion,
  confidence ~0.6–0.9);
* different modules can emit *conflicting* facts for the same person,
  which the fuzzy tree keeps side by side under independent events —
  exactly the situation the warehouse architecture is designed for.

Used by benchmark E8 and the ``information_extraction`` example.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree
from repro.events.table import EventTable
from repro.tpwj.parser import parse_pattern
from repro.tpwj.pattern import Pattern
from repro.trees.builder import tree
from repro.updates.operations import DeleteOperation, InsertOperation
from repro.updates.transaction import UpdateTransaction

__all__ = ["ExtractionScenario"]

_FIRST_NAMES = (
    "alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
    "ivan", "judy", "mallory", "oscar", "peggy", "sybil", "trent", "victor",
)
_DOMAINS = ("example.org", "inria.fr", "acm.org", "edbt.example")
_ORGS = ("INRIA", "CNRS", "UPS", "ENS", "MPI", "UW")


class ExtractionScenario:
    """A reproducible stream of IE-style probabilistic updates."""

    def __init__(self, seed: int = 0, n_people: int = 8) -> None:
        if n_people < 1:
            raise ValueError("n_people must be at least 1")
        if n_people > len(_FIRST_NAMES):
            raise ValueError(f"at most {len(_FIRST_NAMES)} people supported")
        self.rng = random.Random(seed)
        self.people = list(_FIRST_NAMES[:n_people])

    # ------------------------------------------------------------------
    # Initial state
    # ------------------------------------------------------------------

    def initial_document(self) -> FuzzyTree:
        """The certain skeleton: one person entry per known name."""
        root = FuzzyNode("directory")
        for name in self.people:
            person = FuzzyNode("person")
            person.add_child(FuzzyNode("name", value=name))
            root.add_child(person)
        return FuzzyTree(root, EventTable())

    # ------------------------------------------------------------------
    # Update stream
    # ------------------------------------------------------------------

    def stream(self, count: int) -> Iterator[UpdateTransaction]:
        """Yield *count* probabilistic update transactions."""
        emitters = (
            self._emit_email,
            self._emit_affiliation,
            self._emit_phone,
            self._emit_phone_correction,
        )
        for _ in range(count):
            emit = self.rng.choice(emitters)
            yield emit()

    def _person_query(self, name: str) -> Pattern:
        return parse_pattern(f'/directory {{ person[$p] {{ name[="{name}"] }} }}')

    def _emit_email(self) -> UpdateTransaction:
        name = self.rng.choice(self.people)
        email = f"{name}@{self.rng.choice(_DOMAINS)}"
        subtree = tree("email", email)
        confidence = round(self.rng.uniform(0.7, 0.95), 2)
        return UpdateTransaction(
            self._person_query(name), [InsertOperation("p", subtree)], confidence
        )

    def _emit_affiliation(self) -> UpdateTransaction:
        name = self.rng.choice(self.people)
        org = self.rng.choice(_ORGS)
        subtree = tree("affiliation", tree("org", org))
        confidence = round(self.rng.uniform(0.6, 0.9), 2)
        return UpdateTransaction(
            self._person_query(name), [InsertOperation("p", subtree)], confidence
        )

    def _emit_phone(self) -> UpdateTransaction:
        name = self.rng.choice(self.people)
        digits = "".join(str(self.rng.randrange(10)) for _ in range(8))
        subtree = tree("phone", f"+33 {digits}")
        confidence = round(self.rng.uniform(0.5, 0.9), 2)
        return UpdateTransaction(
            self._person_query(name), [InsertOperation("p", subtree)], confidence
        )

    def _emit_phone_correction(self) -> UpdateTransaction:
        """A cleaning module asserting some person's phone is wrong."""
        name = self.rng.choice(self.people)
        query = parse_pattern(
            f'/directory {{ person {{ name[="{name}"], phone[$ph] }} }}'
        )
        confidence = round(self.rng.uniform(0.6, 0.9), 2)
        return UpdateTransaction(query, [DeleteOperation("ph")], confidence)

    # ------------------------------------------------------------------
    # Query mix
    # ------------------------------------------------------------------

    def query_mix(self) -> list[Pattern]:
        """Representative read workload over the directory."""
        someone = self.people[0]
        return [
            parse_pattern(f'/directory {{ person {{ name[="{someone}"], email }} }}'),
            parse_pattern("/directory { person { affiliation { org } } }"),
            parse_pattern("/directory { person { phone } }"),
            parse_pattern("/directory { //email }"),
        ]
