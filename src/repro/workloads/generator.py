"""Random workload generation: fuzzy documents, queries and updates.

The benchmarks and property tests need instances whose size knobs
(nodes, events, condition density, pattern size) can be swept
independently.  Every generator takes an explicit
:class:`random.Random` so runs are reproducible from their seed.

Queries are generated *from* a document — the generator samples an
actual embedded subtree and relaxes it (wildcards, descendant edges,
value tests, joins on repeated values) — so generated queries are
guaranteed to have at least one match, which keeps benchmark series
comparable across sizes.
"""

from __future__ import annotations

import random

from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree
from repro.events.condition import Condition
from repro.events.literal import Literal
from repro.events.table import EventTable
from repro.tpwj.pattern import Pattern, PatternNode
from repro.trees.node import Node
from repro.trees.random import RandomTreeConfig, random_tree
from repro.updates.operations import DeleteOperation, InsertOperation
from repro.updates.transaction import UpdateTransaction

__all__ = [
    "FuzzyWorkloadConfig",
    "random_fuzzy_tree",
    "random_query_for",
    "random_update_for",
]


class FuzzyWorkloadConfig:
    """Knobs for random fuzzy-document generation."""

    def __init__(
        self,
        tree: RandomTreeConfig | None = None,
        n_events: int = 4,
        condition_probability: float = 0.5,
        max_literals: int = 2,
        min_event_probability: float = 0.1,
        max_event_probability: float = 0.9,
    ) -> None:
        if n_events < 0:
            raise ValueError("n_events must be non-negative")
        if max_literals < 0:
            raise ValueError("max_literals must be non-negative")
        self.tree = tree or RandomTreeConfig()
        self.n_events = n_events
        self.condition_probability = condition_probability
        self.max_literals = max_literals
        self.min_event_probability = min_event_probability
        self.max_event_probability = max_event_probability


def random_fuzzy_tree(
    rng: random.Random, config: FuzzyWorkloadConfig | None = None
) -> FuzzyTree:
    """A random fuzzy document with the configured shape.

    Non-root nodes receive, with probability ``condition_probability``,
    a random conjunction of up to ``max_literals`` literals over the
    event pool.  The root stays unconditioned (model invariant).
    """
    config = config or FuzzyWorkloadConfig()
    plain = random_tree(rng, config.tree)
    events = EventTable()
    names = [
        events.fresh(
            rng.uniform(config.min_event_probability, config.max_event_probability)
        )
        for _ in range(config.n_events)
    ]

    root = FuzzyNode.from_plain(plain)
    if names:
        for node in root.iter():
            if node is root:
                continue
            if rng.random() >= config.condition_probability:
                continue
            count = rng.randint(1, max(1, config.max_literals))
            chosen = rng.sample(names, min(count, len(names)))
            literals = [Literal(name, rng.random() < 0.7) for name in chosen]
            assert isinstance(node, FuzzyNode)
            node.condition = Condition(
                {Literal(l.event, l.positive) for l in literals}
            )
    return FuzzyTree(root, events)


def random_query_for(
    rng: random.Random,
    root: Node,
    max_nodes: int = 4,
    descendant_probability: float = 0.3,
    wildcard_probability: float = 0.1,
    value_test_probability: float = 0.4,
    join_probability: float = 0.3,
    anchored_probability: float = 0.5,
) -> Pattern:
    """A TPWJ query with at least one match in the tree rooted at *root*.

    The generator embeds the pattern into the document: it picks a data
    node for the pattern root, then repeatedly extends a random pattern
    leaf with one of its image's children (possibly via a descendant
    edge, skipping a level when one exists).  Finally it decorates the
    pattern with wildcards, value tests, and — when the document has a
    repeated value reachable from two pattern positions — a join.
    """
    anchored = rng.random() < anchored_probability
    base = root if anchored else rng.choice(list(root.iter()))

    # Pattern skeleton paired with image nodes.
    pattern_root = PatternNode(base.label)
    paired: list[tuple[PatternNode, Node]] = [(pattern_root, base)]
    growable = [(pattern_root, base)]
    while len(paired) < max_nodes and growable:
        parent_pattern, parent_data = growable[rng.randrange(len(growable))]
        candidates = [c for c in parent_data.children]
        if not candidates:
            growable.remove((parent_pattern, parent_data))
            continue
        image = rng.choice(candidates)
        descendant = False
        # With a descendant edge we may skip into a deeper node.
        if rng.random() < descendant_probability:
            descendants = [n for n in image.iter()]
            image = rng.choice(descendants)
            descendant = True
        child_pattern = PatternNode(image.label, descendant=descendant)
        parent_pattern.add_child(child_pattern)
        paired.append((child_pattern, image))
        growable.append((child_pattern, image))

    # Decoration: wildcards, value tests, joins.
    values_seen: dict[str, list[PatternNode]] = {}
    for pattern_node, image in paired:
        if pattern_node is not pattern_root and rng.random() < wildcard_probability:
            pattern_node.label = None
        if image.value is not None and not pattern_node.children:
            if rng.random() < value_test_probability:
                pattern_node.value = image.value
            values_seen.setdefault(image.value, []).append(pattern_node)

    variable_counter = 0
    if rng.random() < join_probability:
        joinable = [nodes for nodes in values_seen.values() if len(nodes) >= 2]
        if joinable:
            group = rng.choice(joinable)
            variable_counter += 1
            for node in group[:2]:
                node.variable = f"j{variable_counter}"

    return Pattern(pattern_root, anchored=anchored)


def random_update_for(
    rng: random.Random,
    fuzzy: FuzzyTree,
    confidence: float | None = None,
    insert_probability: float = 0.6,
    max_insert_nodes: int = 4,
    query_nodes: int = 3,
) -> UpdateTransaction:
    """A random update transaction applicable to *fuzzy*.

    Generates a matching query, names two of its nodes, and builds an
    insertion under one (a small random subtree) and/or a deletion of a
    non-root pattern node.  At least one operation is always produced.
    """
    pattern = random_query_for(
        rng,
        fuzzy.root,
        max_nodes=query_nodes,
        join_probability=0.0,
        value_test_probability=0.2,
        wildcard_probability=0.0,
    )
    nodes = pattern.nodes()
    # Anchor: any pattern node without a value test (mixed content rule).
    anchors = [n for n in nodes if n.value is None]
    non_roots = [n for n in nodes if n.parent is not None]

    operations: list = []
    counter = 0
    if anchors and rng.random() < insert_probability:
        counter += 1
        anchor = rng.choice(anchors)
        anchor.variable = anchor.variable or f"a{counter}"
        subtree = random_tree(
            rng,
            RandomTreeConfig(max_nodes=max_insert_nodes, max_children=2, max_depth=2),
        )
        operations.append(InsertOperation(anchor.variable, subtree))
    if non_roots and (not operations or rng.random() < 0.5):
        counter += 1
        target = rng.choice(non_roots)
        target.variable = target.variable or f"d{counter}"
        operations.append(DeleteOperation(target.variable))
    if not operations:
        # Root-only pattern with no insert drawn: force an insertion.
        anchor = nodes[0]
        anchor.variable = anchor.variable or "a0"
        operations.append(InsertOperation(anchor.variable, Node("X")))

    if confidence is None:
        confidence = rng.choice([0.5, 0.8, 0.9, 1.0])
    return UpdateTransaction(pattern, operations, confidence)
