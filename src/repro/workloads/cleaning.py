"""Data-cleaning and schema-matching module simulators (paper, slide 2).

Two further sources of imprecise updates from the paper's motivation:

* **Data cleaning** (:class:`CleaningScenario`): a product catalog
  polluted with duplicate entries; a deduplication module emits
  *probabilistic deletions* ("entry X duplicates entry Y, drop X",
  confidence ~0.6–0.95).  Deletions are the expensive fuzzy-tree
  operation, so this scenario stresses survivor-copy growth.

* **Schema matching** (:class:`MatchingScenario`): a matcher aligns
  catalog categories with a target taxonomy and records each
  correspondence as an inserted ``match`` annotation with the matcher's
  confidence — the classic "schema matching produces scores" workload.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree
from repro.events.table import EventTable
from repro.tpwj.parser import parse_pattern
from repro.trees.builder import tree
from repro.updates.operations import DeleteOperation, InsertOperation
from repro.updates.transaction import UpdateTransaction

__all__ = ["CleaningScenario", "MatchingScenario"]

_PRODUCTS = (
    "laptop", "phone", "tablet", "camera", "printer", "monitor",
    "keyboard", "mouse", "headset", "router",
)
_CATEGORIES = ("computing", "imaging", "peripherals", "networking")
_TAXONOMY = ("electronics", "office", "accessories")


class CleaningScenario:
    """Duplicate-riddled catalog plus a deduplication update stream."""

    def __init__(self, seed: int = 0, n_products: int = 6, duplicate_rate: float = 0.5) -> None:
        if not 1 <= n_products <= len(_PRODUCTS):
            raise ValueError(f"n_products must be in 1..{len(_PRODUCTS)}")
        self.rng = random.Random(seed)
        self.products = list(_PRODUCTS[:n_products])
        self.duplicate_rate = duplicate_rate

    def initial_document(self) -> FuzzyTree:
        """A catalog where some products appear twice (dirty duplicates)."""
        root = FuzzyNode("catalog")
        for product in self.products:
            copies = 2 if self.rng.random() < self.duplicate_rate else 1
            for copy_index in range(copies):
                entry = FuzzyNode("entry")
                entry.add_child(FuzzyNode("sku", value=product))
                price = 100 + 10 * copy_index + self.rng.randrange(50)
                entry.add_child(FuzzyNode("price", value=str(price)))
                root.add_child(entry)
        return FuzzyTree(root, EventTable())

    def stream(self, count: int) -> Iterator[UpdateTransaction]:
        """Deduplication verdicts: delete one entry of a duplicated sku."""
        for _ in range(count):
            product = self.rng.choice(self.products)
            query = parse_pattern(
                f'/catalog {{ entry[$e] {{ sku[="{product}"] }} }}'
            )
            confidence = round(self.rng.uniform(0.6, 0.95), 2)
            yield UpdateTransaction(query, [DeleteOperation("e")], confidence)

    def query_mix(self):
        return [
            parse_pattern("/catalog { entry { sku, price } }"),
            parse_pattern(f'/catalog {{ entry {{ sku[="{self.products[0]}"] }} }}'),
        ]


class MatchingScenario:
    """Category taxonomy plus a schema-matcher correspondence stream."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def initial_document(self) -> FuzzyTree:
        root = FuzzyNode("schema")
        source = FuzzyNode("source")
        for category in _CATEGORIES:
            source.add_child(FuzzyNode("category", value=category))
        target = FuzzyNode("target")
        for concept in _TAXONOMY:
            target.add_child(FuzzyNode("concept", value=concept))
        root.add_child(source)
        root.add_child(target)
        root.add_child(FuzzyNode("correspondences"))
        return FuzzyTree(root, EventTable())

    def stream(self, count: int) -> Iterator[UpdateTransaction]:
        """Matcher verdicts: insert a match annotation with a score."""
        for _ in range(count):
            category = self.rng.choice(_CATEGORIES)
            concept = self.rng.choice(_TAXONOMY)
            query = parse_pattern("/schema { correspondences[$c] }")
            annotation = tree(
                "match", tree("from", category), tree("to", concept)
            )
            confidence = round(self.rng.uniform(0.4, 0.95), 2)
            yield UpdateTransaction(query, [InsertOperation("c", annotation)], confidence)

    def query_mix(self):
        return [
            parse_pattern("/schema { correspondences { match { from, to } } }"),
            parse_pattern("/schema { //match }"),
        ]
