"""Fluent builders compiling to the model's query/update objects.

The paper's modules construct queries and updates *programmatically* —
an extraction pipeline does not concatenate query strings.  The
builders give that construction a fluent surface while compiling to the
exact same :class:`~repro.tpwj.pattern.Pattern` and
:class:`~repro.updates.transaction.UpdateTransaction` objects the text
parsers produce, so everything downstream (planner, matcher, XUpdate
serialization) is shared::

    from repro.api import pattern, update

    q = (
        pattern("A", anchored=True)
        .child("B", variable="v")
        .child(pattern("C").descendant("D", variable="v"))
    )
    q.build()                  # the slide-6 query /A { B[$v], C { //D[$v] } }

    tx = (
        update(pattern("person").child("name", value="Alice", variable="p"))
        .insert("p", tree("email", "alice@example.org"))
        .confidence(0.85)
        .build()               # -> UpdateTransaction
    )

Builders are plain mutable accumulators: every fluent call returns the
builder itself, and :meth:`PatternBuilder.build` /
:meth:`UpdateBuilder.build` compile a **fresh** object each time, so a
builder can be tweaked and rebuilt.
"""

from __future__ import annotations

from repro.errors import QueryError, UpdateError
from repro.tpwj.pattern import Pattern, PatternNode
from repro.trees.builder import tree
from repro.trees.node import Node
from repro.updates.operations import DeleteOperation, InsertOperation
from repro.updates.transaction import UpdateTransaction

__all__ = ["PatternBuilder", "UpdateBuilder", "pattern", "update"]


def pattern(
    label: str | None = "*",
    *,
    value: str | None = None,
    variable: str | None = None,
    anchored: bool = False,
) -> "PatternBuilder":
    """Start a fluent TPWJ pattern at a root node.

    ``label`` may be ``"*"`` (or None) for the wildcard.  ``anchored``
    pins the root node to the document root (text syntax ``/``).
    """
    builder = PatternBuilder(label, value=value, variable=variable)
    if anchored:
        builder.anchored()
    return builder


def update(query: "str | Pattern | PatternBuilder") -> "UpdateBuilder":
    """Start a fluent update transaction against *query*."""
    return UpdateBuilder(query)


class PatternBuilder:
    """Programmatic construction of one TPWJ pattern node (and, through
    :meth:`child` / :meth:`descendant` / :meth:`without`, a whole
    pattern tree).

    The builder covers the full query language: labels and the ``*``
    wildcard, value tests, variables (bindings and value joins), child
    and descendant edges, negated subpatterns, and root anchoring.
    :meth:`build` compiles to a validated :class:`Pattern`;
    ``str(builder)`` renders the text syntax it is equivalent to.
    """

    __slots__ = (
        "_label",
        "_value",
        "_variable",
        "_descendant",
        "_negated",
        "_anchored",
        "_children",
    )

    def __init__(
        self,
        label: str | None = "*",
        *,
        value: str | None = None,
        variable: str | None = None,
    ) -> None:
        if label == "*":
            label = None
        if label is not None and (not isinstance(label, str) or not label):
            raise QueryError(
                f"pattern label must be a non-empty string, '*' or None, got {label!r}"
            )
        self._label = label
        self._value = value
        self._variable = variable
        self._descendant = False
        self._negated = False
        self._anchored = False
        self._children: list[PatternBuilder] = []

    # ------------------------------------------------------------------
    # Node configuration (fluent)
    # ------------------------------------------------------------------

    def var(self, name: str) -> "PatternBuilder":
        """Bind this node to ``$name`` (a repeated name is a value join)."""
        self._variable = name
        return self

    def equals(self, value: str) -> "PatternBuilder":
        """Require the image to be a leaf carrying exactly *value*."""
        self._value = value
        return self

    def anchored(self, flag: bool = True) -> "PatternBuilder":
        """Pin this (root) node to the document root (text syntax ``/``)."""
        self._anchored = bool(flag)
        return self

    # ------------------------------------------------------------------
    # Structure (fluent)
    # ------------------------------------------------------------------

    def child(
        self,
        node: "str | None | PatternBuilder",
        *,
        value: str | None = None,
        variable: str | None = None,
    ) -> "PatternBuilder":
        """Attach a sub-pattern under a child edge; returns *this* builder.

        *node* is a label (or ``"*"``/None) built in place, or a
        nested :class:`PatternBuilder` for deeper shapes.
        """
        return self._attach(node, value, variable, descendant=False, negated=False)

    def descendant(
        self,
        node: "str | None | PatternBuilder",
        *,
        value: str | None = None,
        variable: str | None = None,
    ) -> "PatternBuilder":
        """Attach a sub-pattern under a descendant edge (``//``)."""
        return self._attach(node, value, variable, descendant=True, negated=False)

    def without(
        self,
        node: "str | None | PatternBuilder",
        *,
        value: str | None = None,
        descendant: bool = False,
    ) -> "PatternBuilder":
        """Attach a *negated* sub-pattern: the image must have **no**
        embedding of it (text syntax ``!``).  ``descendant=True`` checks
        the descendant axis instead of the child axis."""
        return self._attach(node, value, None, descendant=descendant, negated=True)

    def _attach(
        self,
        node: "str | None | PatternBuilder",
        value: str | None,
        variable: str | None,
        *,
        descendant: bool,
        negated: bool,
    ) -> "PatternBuilder":
        if isinstance(node, PatternBuilder):
            if node._anchored:
                raise QueryError("only the pattern root can be anchored")
            # Snapshot the sub-builder: attaching must not mutate the
            # caller's object (the same builder attached under two
            # parents would otherwise carry the last attach's axis and
            # negation into both patterns).
            child = node._copy()
            if value is not None:
                child._value = value
            if variable is not None:
                child._variable = variable
        else:
            child = PatternBuilder(node, value=value, variable=variable)
        child._descendant = descendant
        child._negated = negated
        self._children.append(child)
        return self

    def _copy(self) -> "PatternBuilder":
        copy = PatternBuilder(
            self._label if self._label is not None else "*",
            value=self._value,
            variable=self._variable,
        )
        copy._descendant = self._descendant
        copy._negated = self._negated
        copy._anchored = self._anchored
        copy._children = [child._copy() for child in self._children]
        return copy

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def build(self) -> Pattern:
        """Compile to a validated :class:`Pattern` (fresh on every call)."""
        if self._negated:
            raise QueryError("the pattern root cannot be negated")
        return Pattern(self._build_node(), anchored=self._anchored)

    def _build_node(self) -> PatternNode:
        node = PatternNode(
            self._label,
            value=self._value,
            variable=self._variable,
            descendant=self._descendant,
            negated=self._negated,
        )
        for child in self._children:
            node.add_child(child._build_node())
        return node

    def __str__(self) -> str:
        return str(self.build())

    def __repr__(self) -> str:
        return f"PatternBuilder({str(self)!r})"


def compile_pattern(query: "str | Pattern | PatternBuilder") -> Pattern:
    """Normalize the three query spellings to a :class:`Pattern`."""
    if isinstance(query, Pattern):
        return query
    if isinstance(query, PatternBuilder):
        return query.build()
    if isinstance(query, str):
        from repro.tpwj.parser import parse_pattern

        return parse_pattern(query)
    raise QueryError(
        f"expected a pattern string, Pattern or PatternBuilder, got "
        f"{type(query).__name__}"
    )


class UpdateBuilder:
    """Programmatic construction of a probabilistic update transaction.

    Wraps a query (any spelling accepted by :func:`compile_pattern`)
    and accumulates elementary operations anchored at the query's
    variables; :meth:`build` compiles to the same
    :class:`UpdateTransaction` the XUpdate parser produces.
    """

    __slots__ = ("_query", "_operations", "_confidence")

    def __init__(self, query: "str | Pattern | PatternBuilder") -> None:
        self._query = query
        self._operations: list = []
        self._confidence = 1.0

    def insert(
        self, anchor: str, subtree: "Node | str", value: str | None = None
    ) -> "UpdateBuilder":
        """Insert a copy of *subtree* under the node bound by ``$anchor``.

        *subtree* is a :class:`~repro.trees.node.Node` or, for the
        common single-node case, a label (with an optional *value*).
        """
        if isinstance(subtree, str):
            subtree = tree(subtree, value) if value is not None else tree(subtree)
        elif value is not None:
            raise UpdateError("value= only applies when subtree is a label string")
        self._operations.append(InsertOperation(anchor, subtree))
        return self

    def delete(self, target: str) -> "UpdateBuilder":
        """Delete the subtree rooted at the node bound by ``$target``."""
        self._operations.append(DeleteOperation(target))
        return self

    def confidence(self, confidence: float) -> "UpdateBuilder":
        """Set the module's confidence that the update holds."""
        self._confidence = confidence
        return self

    def build(self) -> UpdateTransaction:
        """Compile to a validated :class:`UpdateTransaction`."""
        return UpdateTransaction(
            compile_pattern(self._query), self._operations, self._confidence
        )

    def __repr__(self) -> str:
        return (
            f"UpdateBuilder(query={self._query!r}, "
            f"{len(self._operations)} ops, confidence={self._confidence})"
        )


def compile_transaction(
    transaction: "UpdateTransaction | UpdateBuilder | str",
) -> UpdateTransaction:
    """Normalize the update spellings to an :class:`UpdateTransaction`.

    Strings are parsed as XUpdate documents (the wire format modules
    submit); builders are compiled; transactions pass through.
    """
    if isinstance(transaction, UpdateTransaction):
        return transaction
    if isinstance(transaction, UpdateBuilder):
        return transaction.build()
    if isinstance(transaction, str):
        from repro.xmlio.xupdate import transaction_from_string

        return transaction_from_string(transaction)
    raise UpdateError(
        f"expected an UpdateTransaction, UpdateBuilder or XUpdate string, "
        f"got {type(transaction).__name__}"
    )
