"""Public session API: ``repro.connect`` and the fluent query surface.

One coherent, concurrency-ready entry point over the warehouse (the
paper's "system" architecture — modules connect, query and update a
shared probabilistic store):

* :func:`connect` — open (or create) a warehouse, returning a
  :class:`Session`;
* :class:`Session` — fluent queries (:meth:`Session.query` returns a
  lazy :class:`ResultSet`), updates, batches, snapshots, statistics;
* :func:`pattern` / :class:`PatternBuilder` and :func:`update` /
  :class:`UpdateBuilder` — programmatic construction compiling to the
  same objects as the text parsers;
* :class:`Snapshot` — snapshot-isolated reads pinned at a commit
  sequence while writers keep committing.
"""

from repro.api.builders import (
    PatternBuilder,
    UpdateBuilder,
    compile_pattern,
    compile_transaction,
    pattern,
    update,
)
from repro.api.options import QueryOptions, QueryOptionsError
from repro.api.results import ResultSet, Row, RowStream
from repro.api.session import Session, SessionBatch, Snapshot, connect

__all__ = [
    "connect",
    "Session",
    "SessionBatch",
    "Snapshot",
    "QueryOptions",
    "QueryOptionsError",
    "ResultSet",
    "Row",
    "RowStream",
    "PatternBuilder",
    "UpdateBuilder",
    "pattern",
    "update",
    "compile_pattern",
    "compile_transaction",
]
