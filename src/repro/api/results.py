"""Lazy result sets for session queries.

A :class:`ResultSet` is a *description* of a query against a session or
snapshot — nothing runs until it is iterated.  Iteration streams
:class:`Row` objects through the engine's streaming protocol
(:meth:`~repro.engine.QueryEngine.iter_matches`): the cost-based plan
comes from the source's plan cache, matches are pulled one at a time,
and :meth:`limit` pushes early termination into the backtracking join —
a top-k query stops the enumeration after k rows instead of
materializing everything and slicing.

Rows are per-match (exact probability that *that match* fires, its
answer tree, variable bindings, and a provenance hook resolving the
events involved).  :meth:`ResultSet.answers` folds the stream back into
the classic probability-ranked, per-answer-tree aggregation of
:func:`~repro.core.query.query_fuzzy_tree`.
"""

from __future__ import annotations

import weakref
from time import perf_counter

from repro.core.query import (
    FuzzyAnswer,
    QueryRow,
    group_rows,
    iter_query_rows,
    query_fuzzy_tree,
)
from repro.errors import QueryCancelledError, QueryError

__all__ = ["ResultSet", "Row", "RowStream"]


class Row:
    """One streamed result row: a match with its probability and context.

    Attributes
    ----------
    probability:
        Exact probability that this match fires (disjunction of its
        disjoint existence conditions).
    tree:
        The answer tree (minimal subtree containing the mapped nodes).
    match:
        The underlying :class:`~repro.tpwj.match.Match`.
    dnf:
        The disjoint conditions under which the match holds.
    """

    __slots__ = ("_inner", "_source", "_events", "_obs")

    def __init__(self, inner: QueryRow, source, events, obs=None) -> None:
        self._inner = inner
        self._source = source
        # The event table of the document generation this row was
        # computed on — stable even if the source commits (or
        # simplifies events away) after the row was streamed.
        self._events = events
        # The instrument panel active when the row was streamed, or
        # None: the lazy probability is timed on its first (and only)
        # computation.
        self._obs = obs

    @property
    def probability(self) -> float:
        obs = self._obs
        inner = self._inner
        if obs is not None and inner._probability is None:
            t0 = perf_counter()
            p = inner.probability
            spent = perf_counter() - t0
            if obs.metrics.enabled:
                obs.metrics.observe("query.probability_seconds", spent)
            if obs.tracer.enabled:
                # Lands inside the query span while the stream is being
                # consumed; a no-op if the probability is read after the
                # trace closed.
                obs.tracer.emit("probability_evaluation", spent)
            return p
        return inner.probability

    @property
    def tree(self):
        return self._inner.tree

    @property
    def match(self):
        return self._inner.match

    @property
    def dnf(self):
        return self._inner.dnf

    def bindings(self) -> dict[str, str | None]:
        """Variable name -> bound text value for this match."""
        return self._inner.bindings()

    def explain(self) -> list[dict]:
        """Provenance: one record per event involved in this row.

        Each record carries the event name, its probability, and — when
        the event was minted by an update committed through the row's
        warehouse — the originating transaction's audit-log entry.
        """
        return [
            {
                "event": event,
                "probability": self._events.probability(event),
                "origin": self._source._provenance(event),
            }
            for event in sorted(self._inner.dnf.events())
        ]

    def __repr__(self) -> str:
        return f"Row(p={self.probability:.6g}, tree={self.tree.canonical()})"


class ResultSet:
    """A lazy, re-iterable stream of query rows.

    Each ``iter()`` re-executes the query against the source's current
    document (snapshots pin theirs, so re-iteration there is stable);
    repeated executions hit the source's plan cache.  A result set is
    immutable — :meth:`limit` returns a new one.
    """

    __slots__ = ("_source", "_pattern", "_limit", "_planner")

    def __init__(
        self, source, pattern, limit: int | None = None, planner: bool = True
    ) -> None:
        self._source = source
        self._pattern = pattern
        self._limit = limit
        # planner=False falls back to the fixed-strategy matcher (the
        # E9 ablation baseline); it materializes matches, so limits
        # truncate but do not stream.
        self._planner = planner

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------

    def limit(self, n: int) -> "ResultSet":
        """At most *n* rows, computed by early termination.

        The cap is pushed into the engine's streaming protocol: the
        backtracking enumeration stops as soon as *n* rows have been
        emitted, so a small limit on a large document does a fraction
        of the full query's work.  The limited stream is a prefix of
        the unlimited one (same plan, same deterministic order).
        """
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            raise QueryError(f"limit must be a non-negative int, got {n!r}")
        capped = n if self._limit is None else min(self._limit, n)
        return ResultSet(self._source, self._pattern, capped, self._planner)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    def __iter__(self) -> "RowStream":
        # Iteration over a *live* session pins the current document
        # generation for its whole duration: a commit landing between
        # two rows copies-on-write instead of mutating the tree this
        # iterator is walking.  (Snapshots are already pinned; their
        # release callback is None.)  The pin is taken here — the
        # RowStream owns it and guarantees release on exhaustion,
        # close(), context-manager exit, or garbage collection of an
        # abandoned iterator (weakref finalizer).
        return self.stream()

    def stream(self, *, abort=None) -> "RowStream":
        """An explicit :class:`RowStream`, optionally cancellable.

        *abort*, when given, is a zero-argument callable polled before
        every row is computed (so it may be flipped from another thread
        — a deadline timer, a disconnect watcher).  Once it returns
        true the enumeration stops before doing any further work, the
        iteration pin is released, and the stream raises
        :class:`~repro.errors.QueryCancelledError` — the serving
        layer's per-request deadline path.
        """
        return RowStream(
            self._source, self._pattern, self._limit, self._planner, abort
        )

    def all(self) -> list[Row]:
        """Materialize every row (honoring :meth:`limit`)."""
        return list(self)

    def first(self) -> Row | None:
        """The first row, computed without enumerating the rest."""
        stream = iter(self)
        try:
            return next(stream, None)
        finally:
            # Close explicitly so the iteration pin is released now,
            # not whenever the abandoned generator is collected.
            stream.close()

    def count(self) -> int:
        """Number of rows (honoring :meth:`limit`)."""
        return sum(1 for _ in self)

    def answers(self) -> list[FuzzyAnswer]:
        """Classic aggregation: rows grouped per answer tree, ranked.

        Matches inducing the same answer tree are merged (their
        conditions disjoined) and the aggregates ranked by decreasing
        probability — identical to the historical
        ``Warehouse.query`` result when no limit is set; with a limit,
        the aggregation covers the streamed prefix only.
        """
        fuzzy, engine, config, release, obs = self._source._iter_context()
        tracing = obs is not None and obs.tracer.enabled
        metrics = obs is not None and obs.metrics.enabled
        engine = engine if self._planner else None
        span = (
            obs.tracer.start("query", pattern=self._pattern, aggregate=True)
            if tracing
            else None
        )
        t0 = perf_counter()
        answers: list[FuzzyAnswer] | None = None
        try:
            if self._limit is None:
                # No cap: the classic aggregation prices each answer
                # group once; rows never compute their own probability
                # (it is lazy), so nothing is paid twice.
                answers = query_fuzzy_tree(
                    fuzzy, self._pattern, config, engine=engine
                )
            else:
                rows = iter_query_rows(
                    fuzzy, self._pattern, config, engine=engine, limit=self._limit
                )
                answers = group_rows(
                    rows,
                    fuzzy.events,
                    cache=engine.shannon if engine is not None else None,
                )
            return answers
        finally:
            if release is not None:
                release()
            if span is not None:
                if answers is not None:
                    span.attributes["rows"] = len(answers)
                obs.tracer.finish(span)
            if metrics:
                _record_query_metrics(
                    obs,
                    self._pattern,
                    perf_counter() - t0,
                    len(answers) if answers is not None else 0,
                    span,
                    engine,
                )

    def __repr__(self) -> str:
        limit = "" if self._limit is None else f", limit={self._limit}"
        return f"ResultSet({str(self._pattern)!r}{limit})"


def _plan_text(engine, pattern) -> str | None:
    """The chosen plan's rendering for a slow-log entry (None off-plan)."""
    if engine is None:
        return None
    try:
        return engine.plan_for(pattern).explain()
    except Exception:
        # Slow-log capture must never turn a finished query into an
        # error; a plan that cannot be (re)built just goes unrecorded.
        return None


def _record_query_metrics(obs, pattern, duration, rows, span, engine) -> None:
    """Fold one finished query into counters, histogram and slow log."""
    registry = obs.metrics
    registry.incr("api.queries")
    registry.observe("api.query_seconds", duration)
    slowlog = obs.slowlog
    if slowlog.should_record(duration):
        registry.incr("api.slow_queries")
        slowlog.record(
            str(pattern),
            duration,
            rows,
            phases=span.phase_seconds() if span is not None else None,
            plan=_plan_text(engine, pattern),
        )


def _check_abort(abort) -> None:
    """Raise :class:`QueryCancelledError` once *abort* returns true.

    Polled between rows — before the next row's enumeration and
    probability work starts — so a flipped deadline flag stops the
    stream at the next row boundary, not after another full match.
    """
    if abort():
        raise QueryCancelledError("query cancelled by its abort hook")


def _stream_rows(source, fuzzy, engine, config, pattern, limit, planner, obs, abort):
    """The row generator behind a :class:`RowStream`.

    A module-level function (not a method) so the generator holds no
    reference to the stream object — the stream's weakref finalizer
    must be able to fire while the generator is still referenced by it.

    With instrumentation attached the generator opens a ``query`` span
    (the engine's plan-cache / plan-build / view-build emits nest under
    it), accumulates per-pull enumeration time into one
    ``match_enumeration`` child, and on exhaustion *or* early close
    records first-row/total latencies, row counts and — past the
    threshold — a slow-log entry.  Fully disabled, the cost is one
    flag check per query (the plain loop below).
    """
    engine = engine if planner else None
    tracing = obs is not None and obs.tracer.enabled
    metrics = obs is not None and obs.metrics.enabled
    if not tracing and not metrics:
        if abort is None:
            for inner in iter_query_rows(
                fuzzy, pattern, config, engine=engine, limit=limit
            ):
                yield Row(inner, source, fuzzy.events)
            return
        _check_abort(abort)
        stream = iter_query_rows(
            fuzzy, pattern, config, engine=engine, limit=limit
        )
        while True:
            try:
                inner = next(stream)
            except StopIteration:
                return
            yield Row(inner, source, fuzzy.events)
            _check_abort(abort)

    registry = obs.metrics
    events = fuzzy.events
    # The pattern rides along as an object: render_span/as_dict
    # stringify it only when a human actually reads the trace.
    span = obs.tracer.start("query", pattern=pattern) if tracing else None
    rows = 0
    t0 = perf_counter()
    try:
        stream = iter_query_rows(
            fuzzy, pattern, config, engine=engine, limit=limit
        )
        while True:
            if abort is not None:
                _check_abort(abort)
            t_pull = perf_counter()
            try:
                inner = next(stream)
            except StopIteration:
                if span is not None:
                    span.record("match_enumeration", perf_counter() - t_pull)
                break
            pulled = perf_counter() - t_pull
            if span is not None:
                span.record("match_enumeration", pulled)
            if metrics and rows == 0:
                registry.observe("api.first_row_seconds", perf_counter() - t0)
            rows += 1
            yield Row(inner, source, events, obs)
    finally:
        duration = perf_counter() - t0
        if span is not None:
            span.attributes["rows"] = rows
            obs.tracer.finish(span)
        if metrics:
            if rows:
                registry.incr("api.rows_streamed", rows)
            _record_query_metrics(obs, pattern, duration, rows, span, engine)


class RowStream:
    """One execution of a :class:`ResultSet`: an iterator of :class:`Row`.

    On a live session the stream owns the iteration pin; it is released
    exactly once, on whichever comes first:

    * exhaustion (the query ran to completion or hit its limit);
    * :meth:`close`, explicit or via the stream's own context manager
      (``with iter(result_set) as stream: ...``);
    * garbage collection of an abandoned stream (a ``weakref``
      finalizer, so breaking out of a loop and dropping the iterator
      can never pin the generation forever).

    Snapshot streams carry no pin (their source holds one for the
    snapshot's whole lifetime) and close() is a plain generator close.
    """

    __slots__ = ("_inner", "_finalizer", "__weakref__")

    def __init__(self, source, pattern, limit, planner, abort=None) -> None:
        fuzzy, engine, config, release, obs = source._iter_context()
        # The finalizer calls the pin's release directly — it must not
        # reference self, or the stream could never become unreachable.
        self._finalizer = (
            weakref.finalize(self, release) if release is not None else None
        )
        self._inner = _stream_rows(
            source, fuzzy, engine, config, pattern, limit, planner, obs, abort
        )

    def __iter__(self) -> "RowStream":
        return self

    def __next__(self) -> Row:
        try:
            return next(self._inner)
        except BaseException:
            # StopIteration (exhaustion) and real errors both release
            # the pin deterministically, then propagate.
            self.close()
            raise

    def close(self) -> None:
        """Release the iteration pin and abort the enumeration; idempotent."""
        finalizer = self._finalizer
        if finalizer is not None:
            finalizer()  # idempotent: detaches itself on first call
        self._inner.close()

    @property
    def closed(self) -> bool:
        """True once the stream's pin has been released (live sessions) —
        snapshot streams, which carry no pin, report False until GC."""
        finalizer = self._finalizer
        return finalizer is not None and not finalizer.alive

    def __enter__(self) -> "RowStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"RowStream({state})"
