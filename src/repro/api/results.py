"""Lazy result sets for session queries.

A :class:`ResultSet` is a *description* of a query against a session or
snapshot — nothing runs until it is iterated.  Iteration streams
:class:`Row` objects through the engine's streaming protocol
(:meth:`~repro.engine.QueryEngine.iter_matches`): the cost-based plan
comes from the source's plan cache, matches are pulled one at a time,
and :meth:`limit` pushes early termination into the backtracking join —
a top-k query stops the enumeration after k rows instead of
materializing everything and slicing.

Rows are per-match (exact probability that *that match* fires, its
answer tree, variable bindings, and a provenance hook resolving the
events involved).  :meth:`ResultSet.answers` folds the stream back into
the classic probability-ranked, per-answer-tree aggregation of
:func:`~repro.core.query.query_fuzzy_tree`.
"""

from __future__ import annotations

import random
import weakref
from sys import intern as _intern_str
from time import perf_counter

from repro.api.options import QueryOptions
from repro.core.montecarlo import AnswerEstimate, estimate_answers
from repro.core.query import (
    FuzzyAnswer,
    QueryRow,
    group_rows,
    iter_bounded_rows,
    iter_query_rows,
    query_fuzzy_tree,
    topk_rows,
)
from repro.errors import QueryCancelledError, QueryError
from repro.events.dnf import Dnf

__all__ = ["ResultSet", "Row", "RowStream"]


class Row:
    """One streamed result row: a match with its probability and context.

    Attributes
    ----------
    probability:
        Exact probability that this match fires (disjunction of its
        disjoint existence conditions).
    tree:
        The answer tree (minimal subtree containing the mapped nodes).
    match:
        The underlying :class:`~repro.tpwj.match.Match`.
    dnf:
        The disjoint conditions under which the match holds.
    """

    __slots__ = ("_inner", "_source", "_events", "_obs")

    def __init__(self, inner: QueryRow, source, events, obs=None) -> None:
        self._inner = inner
        self._source = source
        # The event table of the document generation this row was
        # computed on — stable even if the source commits (or
        # simplifies events away) after the row was streamed.
        self._events = events
        # The instrument panel active when the row was streamed, or
        # None: the lazy probability is timed on its first (and only)
        # computation.
        self._obs = obs

    @property
    def probability(self) -> float:
        obs = self._obs
        inner = self._inner
        if obs is not None and inner._probability is None:
            t0 = perf_counter()
            p = inner.probability
            spent = perf_counter() - t0
            if obs.metrics.enabled:
                obs.metrics.observe("query.probability_seconds", spent)
            if obs.tracer.enabled:
                # Lands inside the query span while the stream is being
                # consumed; a no-op if the probability is read after the
                # trace closed.
                obs.tracer.emit("probability_evaluation", spent)
            return p
        return inner.probability

    @property
    def tree(self):
        return self._inner.tree

    @property
    def match(self):
        return self._inner.match

    @property
    def dnf(self):
        return self._inner.dnf

    def bindings(self) -> dict[str, str | None]:
        """Variable name -> bound text value for this match."""
        return self._inner.bindings()

    def explain(self) -> list[dict]:
        """Provenance: one record per event involved in this row.

        Each record carries the event name, its probability, and — when
        the event was minted by an update committed through the row's
        warehouse — the originating transaction's audit-log entry.
        """
        return [
            {
                "event": event,
                "probability": self._events.probability(event),
                "origin": self._source._provenance(event),
            }
            for event in sorted(self._inner.dnf.events())
        ]

    def __repr__(self) -> str:
        return f"Row(p={self.probability:.6g}, tree={self.tree.canonical()})"


class ResultSet:
    """A lazy, re-iterable stream of query rows.

    Each ``iter()`` re-executes the query against the source's current
    document (snapshots pin theirs, so re-iteration there is stable);
    repeated executions hit the source's plan cache.  A result set is
    immutable — every refinement (:meth:`limit`,
    :meth:`order_by_probability`, :meth:`min_probability`) returns a
    new one; all of them are sugar over the set's frozen
    :class:`~repro.api.options.QueryOptions`, the same object every
    serving layer threads through unchanged.
    """

    __slots__ = ("_source", "_pattern", "_options")

    def __init__(
        self,
        source,
        pattern,
        limit: int | None = None,
        planner: bool = True,
        *,
        options: QueryOptions | None = None,
    ) -> None:
        self._source = source
        self._pattern = pattern
        if options is None:
            # planner=False falls back to the fixed-strategy matcher
            # (the E9 ablation baseline); it materializes matches, so
            # limits truncate but do not stream.
            options = QueryOptions(
                limit=limit, plan="auto" if planner else "fixed"
            )
        self._options = options

    @property
    def options(self) -> QueryOptions:
        """The frozen execution envelope this set describes."""
        return self._options

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------

    def _replace(self, **changes) -> "ResultSet":
        return ResultSet(
            self._source, self._pattern, options=self._options.replace(**changes)
        )

    def limit(self, n: int) -> "ResultSet":
        """At most *n* rows, computed by early termination.

        The cap is pushed into the engine's streaming protocol: the
        backtracking enumeration stops as soon as *n* rows have been
        emitted, so a small limit on a large document does a fraction
        of the full query's work.  In document order the limited stream
        is a prefix of the unlimited one (same plan, same deterministic
        order); combined with :meth:`order_by_probability` it is
        top-k, executed as branch-and-bound inside the join.
        """
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            raise QueryError(f"limit must be a non-negative int, got {n!r}")
        current = self._options.limit
        capped = n if current is None else min(current, n)
        return self._replace(limit=capped)

    def order_by_probability(self) -> "ResultSet":
        """Rows in decreasing-probability order, ties in document order.

        With a :meth:`limit` this executes as branch-and-bound top-k:
        partial matches whose probability upper bound (the product of
        their bound nodes' closed conditions) cannot beat the current
        k-th best are pruned inside the backtracking join, never
        enumerated.
        """
        return self._replace(order="probability")

    def min_probability(self, p) -> "ResultSet":
        """Only rows with probability >= *p*.

        The threshold is pushed into the join: partial matches whose
        upper bound is already below *p* are pruned.  Chaining keeps
        the strictest threshold.
        """
        if isinstance(p, bool) or not isinstance(p, (int, float)) or not 0.0 <= p <= 1.0:
            raise QueryError(
                f"min_probability must be a number in [0, 1], got {p!r}"
            )
        current = self._options.min_probability
        floor = float(p) if current is None else max(current, float(p))
        return self._replace(min_probability=floor)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    def __iter__(self) -> "RowStream":
        # Iteration over a *live* session pins the current document
        # generation for its whole duration: a commit landing between
        # two rows copies-on-write instead of mutating the tree this
        # iterator is walking.  (Snapshots are already pinned; their
        # release callback is None.)  The pin is taken here — the
        # RowStream owns it and guarantees release on exhaustion,
        # close(), context-manager exit, or garbage collection of an
        # abandoned iterator (weakref finalizer).
        return self.stream()

    def stream(self, *, abort=None) -> "RowStream":
        """An explicit :class:`RowStream`, optionally cancellable.

        *abort*, when given, is a zero-argument callable polled before
        every row is computed (so it may be flipped from another thread
        — a deadline timer, a disconnect watcher).  Once it returns
        true the enumeration stops before doing any further work, the
        iteration pin is released, and the stream raises
        :class:`~repro.errors.QueryCancelledError` — the serving
        layer's per-request deadline path.

        ``limit(0)`` short-circuits to an empty stream without building
        the engine view or opening an iteration pin.
        """
        if self._options.limit == 0:
            return RowStream.empty()
        return RowStream(self._source, self._pattern, self._options, abort)

    def estimate(
        self,
        *,
        epsilon: float | None = None,
        deadline_ms: int | None = None,
        seed: int = 0,
    ) -> list[AnswerEstimate]:
        """Anytime Monte-Carlo answers: confidence intervals, not exact.

        The exact path prices each answer by Shannon expansion, which
        is exponential in the answer's DNF in the worst case; this path
        enumerates the same matches (cheap — pricing is what blows up),
        groups them per answer tree, and prices the groups by sampling
        their mentioned events.  Sampling stops when every interval is
        within ±*epsilon* (at 3σ), when the *deadline_ms* budget is
        spent, or at the sample cap — whichever comes first — so
        adversarial event graphs degrade to bounded-error estimates
        instead of timeouts.

        Arguments default to the set's options (``epsilon=0.05`` when
        neither is set anywhere); *seed* fixes the sampler so every
        layer pricing the same groups returns identical estimates.
        Estimates honor ``min_probability`` (as a filter on the
        estimated value) and come back sorted by decreasing
        probability, ties by canonical form.
        """
        opts = self._options
        if epsilon is None:
            epsilon = opts.epsilon
        if deadline_ms is None:
            deadline_ms = opts.deadline_ms
        if opts.limit == 0:
            return []
        fuzzy, engine, config, release, obs = self._source._iter_context()
        engine = engine if opts.use_planner else None
        try:
            grouped: dict[str, tuple] = {}
            for row in iter_query_rows(
                fuzzy, self._pattern, config, engine=engine, limit=opts.limit
            ):
                key = _intern_str(row.tree.canonical())
                entry = grouped.get(key)
                if entry is not None:
                    entry[1].extend(row.dnf.terms)
                else:
                    grouped[key] = (row.tree, list(row.dnf.terms))
            estimates = estimate_answers(
                [(tree, Dnf(terms)) for tree, terms in grouped.values()],
                fuzzy.events,
                epsilon=epsilon,
                deadline=None if deadline_ms is None else deadline_ms / 1000.0,
                rng=random.Random(seed),
            )
        finally:
            if release is not None:
                release()
        if opts.min_probability is not None:
            floor = opts.min_probability
            estimates = [e for e in estimates if e.probability >= floor]
        return estimates

    def all(self) -> list[Row]:
        """Materialize every row (honoring :meth:`limit`)."""
        return list(self)

    def first(self) -> Row | None:
        """The first row, computed without enumerating the rest."""
        stream = iter(self)
        try:
            return next(stream, None)
        finally:
            # Close explicitly so the iteration pin is released now,
            # not whenever the abandoned generator is collected.
            stream.close()

    def count(self) -> int:
        """Number of rows (honoring :meth:`limit`)."""
        return sum(1 for _ in self)

    def answers(self) -> list[FuzzyAnswer]:
        """Classic aggregation: rows grouped per answer tree, ranked.

        Matches inducing the same answer tree are merged (their
        conditions disjoined) and the aggregates ranked by decreasing
        probability — identical to the historical
        historical per-answer aggregation when no limit is set; with a
        limit, the aggregation covers the streamed prefix only.
        """
        options = self._options
        if options.limit == 0:
            return []
        fuzzy, engine, config, release, obs = self._source._iter_context()
        tracing = obs is not None and obs.tracer.enabled
        metrics = obs is not None and obs.metrics.enabled
        engine = engine if options.use_planner else None
        span = (
            obs.tracer.start("query", pattern=self._pattern, aggregate=True)
            if tracing
            else None
        )
        t0 = perf_counter()
        answers: list[FuzzyAnswer] | None = None
        try:
            if options.is_bounded:
                # Aggregate exactly the rows the bounded stream would
                # emit (top-k / thresholded enumeration).
                rows = _row_iter(fuzzy, engine, config, self._pattern, options, None)
                answers = group_rows(
                    rows,
                    fuzzy.events,
                    cache=engine.shannon if engine is not None else None,
                )
            elif options.limit is None:
                # No cap: the classic aggregation prices each answer
                # group once; rows never compute their own probability
                # (it is lazy), so nothing is paid twice.
                answers = query_fuzzy_tree(
                    fuzzy, self._pattern, config, engine=engine
                )
            else:
                rows = iter_query_rows(
                    fuzzy, self._pattern, config, engine=engine, limit=options.limit
                )
                answers = group_rows(
                    rows,
                    fuzzy.events,
                    cache=engine.shannon if engine is not None else None,
                )
            return answers
        finally:
            if release is not None:
                release()
            if span is not None:
                if answers is not None:
                    span.attributes["rows"] = len(answers)
                obs.tracer.finish(span)
            if metrics:
                _record_query_metrics(
                    obs,
                    self._pattern,
                    perf_counter() - t0,
                    len(answers) if answers is not None else 0,
                    span,
                    engine,
                )

    def __repr__(self) -> str:
        extras = self._options.to_json()
        extras.pop("pattern", None)
        rendered = "".join(f", {k}={v!r}" for k, v in sorted(extras.items()))
        return f"ResultSet({str(self._pattern)!r}{rendered})"


def _plan_text(engine, pattern) -> str | None:
    """The chosen plan's rendering for a slow-log entry (None off-plan)."""
    if engine is None:
        return None
    try:
        return engine.plan_for(pattern).explain()
    except Exception:
        # Slow-log capture must never turn a finished query into an
        # error; a plan that cannot be (re)built just goes unrecorded.
        return None


def _record_query_metrics(obs, pattern, duration, rows, span, engine) -> None:
    """Fold one finished query into counters, histogram and slow log."""
    registry = obs.metrics
    registry.incr("api.queries")
    registry.observe("api.query_seconds", duration)
    slowlog = obs.slowlog
    if slowlog.should_record(duration):
        registry.incr("api.slow_queries")
        slowlog.record(
            str(pattern),
            duration,
            rows,
            phases=span.phase_seconds() if span is not None else None,
            plan=_plan_text(engine, pattern),
        )


def _no_rows():
    """The generator behind :meth:`RowStream.empty` (closeable, done)."""
    return
    yield


def _check_abort(abort) -> None:
    """Raise :class:`QueryCancelledError` once *abort* returns true.

    Polled between rows — before the next row's enumeration and
    probability work starts — so a flipped deadline flag stops the
    stream at the next row boundary, not after another full match.
    """
    if abort():
        raise QueryCancelledError("query cancelled by its abort hook")


def _row_iter(fuzzy, engine, config, pattern, options, abort):
    """The :class:`~repro.core.query.QueryRow` iterator for *options*.

    Dispatches on the options' shape: probability order runs the
    branch-and-bound top-k (eager — the sort key is the exact
    probability), a bare ``min_probability`` runs the thresholded
    document-order enumeration, and the default is the plain lazy
    stream.  *abort* is threaded into the eager path (the generator
    paths poll it between pulls in :func:`_stream_rows`).
    """
    min_p = options.min_probability if options.min_probability is not None else 0.0
    if options.order == "probability":
        return iter(
            topk_rows(
                fuzzy,
                pattern,
                config,
                engine=engine,
                k=options.limit,
                min_probability=min_p,
                abort=abort,
            )
        )
    if min_p > 0.0:
        return iter_bounded_rows(
            fuzzy,
            pattern,
            config,
            engine=engine,
            min_probability=min_p,
            limit=options.limit,
        )
    return iter_query_rows(
        fuzzy, pattern, config, engine=engine, limit=options.limit
    )


def _stream_rows(source, fuzzy, engine, config, pattern, options, obs, abort):
    """The row generator behind a :class:`RowStream`.

    A module-level function (not a method) so the generator holds no
    reference to the stream object — the stream's weakref finalizer
    must be able to fire while the generator is still referenced by it.

    With instrumentation attached the generator opens a ``query`` span
    (the engine's plan-cache / plan-build / view-build emits nest under
    it), accumulates per-pull enumeration time into one
    ``match_enumeration`` child, and on exhaustion *or* early close
    records first-row/total latencies, row counts and — past the
    threshold — a slow-log entry.  Fully disabled, the cost is one
    flag check per query (the plain loop below).
    """
    engine = engine if options.use_planner else None
    tracing = obs is not None and obs.tracer.enabled
    metrics = obs is not None and obs.metrics.enabled
    if not tracing and not metrics:
        if abort is None:
            for inner in _row_iter(fuzzy, engine, config, pattern, options, None):
                yield Row(inner, source, fuzzy.events)
            return
        _check_abort(abort)
        stream = _row_iter(fuzzy, engine, config, pattern, options, abort)
        while True:
            try:
                inner = next(stream)
            except StopIteration:
                return
            yield Row(inner, source, fuzzy.events)
            _check_abort(abort)

    registry = obs.metrics
    events = fuzzy.events
    # The pattern rides along as an object: render_span/as_dict
    # stringify it only when a human actually reads the trace.
    span = obs.tracer.start("query", pattern=pattern) if tracing else None
    rows = 0
    t0 = perf_counter()
    try:
        stream = _row_iter(fuzzy, engine, config, pattern, options, abort)
        while True:
            if abort is not None:
                _check_abort(abort)
            t_pull = perf_counter()
            try:
                inner = next(stream)
            except StopIteration:
                if span is not None:
                    span.record("match_enumeration", perf_counter() - t_pull)
                break
            pulled = perf_counter() - t_pull
            if span is not None:
                span.record("match_enumeration", pulled)
            if metrics and rows == 0:
                registry.observe("api.first_row_seconds", perf_counter() - t0)
            rows += 1
            yield Row(inner, source, events, obs)
    finally:
        duration = perf_counter() - t0
        if span is not None:
            span.attributes["rows"] = rows
            obs.tracer.finish(span)
        if metrics:
            if rows:
                registry.incr("api.rows_streamed", rows)
            _record_query_metrics(obs, pattern, duration, rows, span, engine)


class RowStream:
    """One execution of a :class:`ResultSet`: an iterator of :class:`Row`.

    On a live session the stream owns the iteration pin; it is released
    exactly once, on whichever comes first:

    * exhaustion (the query ran to completion or hit its limit);
    * :meth:`close`, explicit or via the stream's own context manager
      (``with iter(result_set) as stream: ...``);
    * garbage collection of an abandoned stream (a ``weakref``
      finalizer, so breaking out of a loop and dropping the iterator
      can never pin the generation forever).

    Snapshot streams carry no pin (their source holds one for the
    snapshot's whole lifetime) and close() is a plain generator close.
    """

    __slots__ = ("_inner", "_finalizer", "__weakref__")

    def __init__(self, source, pattern, options, abort=None) -> None:
        fuzzy, engine, config, release, obs = source._iter_context()
        # The finalizer calls the pin's release directly — it must not
        # reference self, or the stream could never become unreachable.
        self._finalizer = (
            weakref.finalize(self, release) if release is not None else None
        )
        self._inner = _stream_rows(
            source, fuzzy, engine, config, pattern, options, obs, abort
        )

    @classmethod
    def empty(cls) -> "RowStream":
        """An exhausted stream with no pin and no engine view.

        ``limit(0)`` resolves here: the result is known to be empty, so
        no document generation is pinned and no query work runs —
        ``read_sessions`` stays untouched.
        """
        stream = object.__new__(cls)
        stream._finalizer = None
        stream._inner = _no_rows()
        return stream

    def __iter__(self) -> "RowStream":
        return self

    def __next__(self) -> Row:
        try:
            return next(self._inner)
        except BaseException:
            # StopIteration (exhaustion) and real errors both release
            # the pin deterministically, then propagate.
            self.close()
            raise

    def close(self) -> None:
        """Release the iteration pin and abort the enumeration; idempotent."""
        finalizer = self._finalizer
        if finalizer is not None:
            finalizer()  # idempotent: detaches itself on first call
        self._inner.close()

    @property
    def closed(self) -> bool:
        """True once the stream's pin has been released (live sessions) —
        snapshot streams, which carry no pin, report False until GC."""
        finalizer = self._finalizer
        return finalizer is not None and not finalizer.alive

    def __enter__(self) -> "RowStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"RowStream({state})"
