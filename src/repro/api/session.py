"""Session facade over the warehouse — the library's public surface.

The paper's system is a *service*: imprecise modules continuously query
and update a shared probabilistic XML warehouse.  A :class:`Session` is
one module's handle on that service::

    import repro

    with repro.connect("people-wh", create=True, root="directory") as session:
        session.update(
            repro.update(repro.pattern("directory", variable="d", anchored=True))
            .insert("d", tree("person", tree("name", "Alice")))
            .confidence(0.9)
        )
        for row in session.query("//person { name }").limit(5):
            print(row.probability, row.tree.canonical())

* queries accept strings, :class:`~repro.tpwj.pattern.Pattern` objects
  or :class:`~repro.api.builders.PatternBuilder` DSL chains, and return
  lazy :class:`~repro.api.results.ResultSet` streams evaluated through
  the warehouse's cost-based planner and plan cache;
* updates accept :class:`UpdateTransaction`, XUpdate strings or
  :class:`~repro.api.builders.UpdateBuilder` chains;
* :meth:`Session.snapshot` opens a snapshot-isolated read view: the
  document generation is pinned (O(1) — writers copy on first write),
  so a long-running reader sees one consistent state while commits
  continue.

Thread safety
-------------
A session may be shared across threads in the single-writer /
multi-reader shape the serving layer (:mod:`repro.serve`) builds on:
any number of threads may query (each iteration pins a generation on
entry and releases it on exit, then runs lock-free on the frozen
tree), while update/batch/simplify/compact calls serialize on the
warehouse's write lock.  Snapshots are safe to open, query and close
from any thread.  The one mutable surface *not* meant for concurrent
use is the raw :attr:`Session.document` tree — use queries or
snapshots instead.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.core.fuzzy_tree import FuzzyNode, FuzzyTree
from repro.core.simplify import SimplifyReport
from repro.core.update import UpdateReport
from repro.errors import QueryError, SessionClosedError, WarehouseError
from repro.events.table import EventTable
from repro.tpwj.match import DEFAULT_CONFIG, MatchConfig
from repro.api.builders import compile_pattern, compile_transaction
from repro.api.options import QueryOptions
from repro.api.results import ResultSet
from repro.warehouse.warehouse import (
    USE_DEFAULT_OBSERVABILITY,
    CommitPolicy,
    DocumentPin,
    Warehouse,
)

__all__ = ["Session", "Snapshot", "SessionBatch", "connect"]


def _result_set(source, query, planner, options) -> ResultSet:
    """Build a :class:`ResultSet` from either calling convention.

    The legacy form passes *query* (string / Pattern / builder) plus
    the *planner* flag; the v2 form passes a
    :class:`~repro.api.options.QueryOptions` whose ``plan`` field
    governs planner selection (the *planner* kwarg is ignored then)
    and whose ``pattern`` field substitutes for an omitted *query*.
    """
    if options is not None:
        if not isinstance(options, QueryOptions):
            raise QueryError(
                f"options must be a QueryOptions, got {options!r}"
            )
        if query is None:
            if options.pattern is None:
                raise QueryError(
                    "query() needs a pattern: pass one positionally or "
                    "set options.pattern"
                )
            query = options.pattern
        return ResultSet(source, compile_pattern(query), options=options)
    if query is None:
        raise QueryError(
            "query() needs a pattern (string, Pattern or builder) or options="
        )
    return ResultSet(source, compile_pattern(query), planner=planner)


def connect(
    path: str | Path,
    *,
    create: bool = False,
    root: str | None = None,
    document: FuzzyTree | None = None,
    match_config: MatchConfig = DEFAULT_CONFIG,
    auto_simplify_factor: float | None = None,
    snapshot_every: int = 64,
    wal_bytes_limit: int = 4 * 1024 * 1024,
    compact_on_close: bool = True,
    observability=USE_DEFAULT_OBSERVABILITY,
) -> "Session":
    """Open a session on the warehouse at *path*.

    With ``create=True`` a new warehouse is initialised first, from
    *document* (a :class:`FuzzyTree`) or an empty document rooted at
    label *root*.  The remaining keywords are the commit policy (see
    :class:`~repro.warehouse.warehouse.CommitPolicy`) and the handle's
    match semantics.  Sessions are context managers; closing releases
    open snapshots, folds the WAL per policy and frees the writer lock.

    *observability* defaults to the process-global instrument panel
    (:func:`repro.obs.default_observability`); pass an
    :class:`~repro.obs.Observability` to scope metrics/traces to this
    warehouse, or ``None`` for no instrumentation at all.
    """
    policy = CommitPolicy(
        snapshot_every=snapshot_every,
        wal_bytes_limit=wal_bytes_limit,
        compact_on_close=compact_on_close,
    )
    if create:
        if document is None:
            if root is None:
                raise WarehouseError(
                    "create=True needs document= or root= to initialise from"
                )
            document = FuzzyTree(FuzzyNode(root), EventTable())
        warehouse = Warehouse.create(
            path,
            document,
            match_config=match_config,
            auto_simplify_factor=auto_simplify_factor,
            policy=policy,
            observability=observability,
        )
    else:
        if document is not None or root is not None:
            raise WarehouseError("document=/root= only apply with create=True")
        warehouse = Warehouse.open(
            path,
            match_config=match_config,
            auto_simplify_factor=auto_simplify_factor,
            policy=policy,
            observability=observability,
        )
    return Session(warehouse)


class Session:
    """A connected module's handle: fluent queries, updates, snapshots."""

    __slots__ = ("_warehouse", "_snapshots", "_closed", "_lock")

    def __init__(self, warehouse: Warehouse) -> None:
        self._warehouse = warehouse
        self._snapshots: list[Snapshot] = []
        self._closed = False
        # Guards the snapshot registry and the closed flag (queries and
        # updates synchronize on the warehouse's own locks instead).
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release snapshots and the warehouse handle; idempotent.

        Safe to race: exactly one thread performs the shutdown."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            snapshots = list(self._snapshots)
        for snapshot in snapshots:
            snapshot.close()
        self._warehouse.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("session is closed")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, query=None, *, planner: bool = True, options=None) -> ResultSet:
        """A lazy result stream for *query* (string, Pattern or builder).

        Nothing runs until the result set is iterated; iteration goes
        through the warehouse's cost-based planner and plan cache, and
        ``.limit(n)`` streams — see :class:`ResultSet`.
        ``planner=False`` is the fixed-strategy ablation baseline.

        *options*, a :class:`~repro.api.QueryOptions`, carries the full
        execution envelope (limit, order, ``min_probability``, anytime
        parameters) in one object — the form every serving layer
        threads through unchanged.  *query* may then be omitted: the
        options' ``pattern`` field is compiled instead.
        """
        self._check_open()
        return _result_set(self, query, planner, options)

    def explain(self, query) -> str:
        """The engine's statistics and chosen plan for *query*, rendered."""
        self._check_open()
        return self._warehouse.explain_plan(compile_pattern(query))

    def _iter_context(self):
        """(document, engine, config, release, obs) for ResultSet iteration.

        The document generation is pinned for the iteration's duration
        so a commit landing between two streamed rows copies-on-write
        instead of mutating the tree under the iterator; *release*
        (called by the ResultSet when iteration ends) unpins it.  *obs*
        is the warehouse's instrument panel (or None).
        """
        self._check_open()
        warehouse = self._warehouse
        pin = warehouse.pin()
        return (
            pin.document,
            warehouse.engine,
            warehouse._match_config,
            pin.release,
            warehouse._obs,
        )

    def _provenance(self, event: str) -> dict | None:
        self._check_open()
        return self._warehouse.provenance(event)

    # ------------------------------------------------------------------
    # Snapshot-isolated reads
    # ------------------------------------------------------------------

    def snapshot(self) -> "Snapshot":
        """Pin the current document generation for consistent reads.

        The returned :class:`Snapshot` keeps answering queries against
        the state as of this commit sequence while this session (or the
        underlying warehouse) keeps committing.  Use it as a context
        manager; open snapshots count into ``stats()['read_sessions']``.
        """
        self._check_open()
        snapshot = Snapshot(self, self._warehouse.pin())
        with self._lock:
            doomed = self._closed
            if not doomed:
                self._snapshots.append(snapshot)
        if doomed:
            # Lost a race with close(): do not leak the pin.  Closing
            # happens outside the session lock — Snapshot.close()
            # re-enters it via _forget_snapshot.
            snapshot.close()
            raise SessionClosedError("session is closed")
        return snapshot

    def _forget_snapshot(self, snapshot: "Snapshot") -> None:
        with self._lock:
            try:
                self._snapshots.remove(snapshot)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(self, transaction, confidence: float | None = None) -> UpdateReport:
        """Apply one probabilistic update and commit it durably.

        *transaction* is an :class:`UpdateTransaction`, an
        :class:`~repro.api.builders.UpdateBuilder`, or an XUpdate
        document string; *confidence*, when given, overrides the
        transaction's own (the paper's modules attach their confidence
        at submission time).
        """
        self._check_open()
        return self._warehouse._commit_update(
            compile_transaction(transaction), confidence
        )

    def update_many(self, transactions, confidence: float | None = None) -> list[UpdateReport]:
        """Apply a batch of updates in order as **one** commit."""
        self._check_open()
        return self._warehouse.update_many(
            [compile_transaction(transaction) for transaction in transactions],
            confidence=confidence,
        )

    def batch(self) -> "SessionBatch":
        """A context manager buffering updates into one batched commit."""
        self._check_open()
        return SessionBatch(self)

    def simplify(self) -> SimplifyReport:
        """Run fuzzy-data simplification and commit the smaller document."""
        self._check_open()
        return self._warehouse.simplify()

    def compact(self) -> dict:
        """Fold the WAL into a fresh snapshot now; returns a summary."""
        self._check_open()
        return self._warehouse.compact()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def document(self) -> FuzzyTree:
        """The live fuzzy document (treat as read-only; use update())."""
        self._check_open()
        return self._warehouse.document

    @property
    def sequence(self) -> int:
        """Commit sequence number (increments on every commit)."""
        self._check_open()
        return self._warehouse.sequence

    @property
    def warehouse(self) -> Warehouse:
        """The underlying warehouse handle (storage-level surface)."""
        return self._warehouse

    def stats(self) -> dict:
        """Document measurements plus commit/log/WAL/read-session counters."""
        self._check_open()
        return self._warehouse.stats()

    @property
    def observability(self):
        """The warehouse's :class:`~repro.obs.Observability` panel (or None)."""
        return self._warehouse.observability

    def metrics(self):
        """The warehouse's :class:`~repro.obs.MetricsRegistry` (or None).

        ``session.metrics().snapshot()`` is the structured dashboard;
        :func:`repro.obs.render_prometheus` turns the same registry
        into scrape-ready text.
        """
        obs = self._warehouse.observability
        return None if obs is None else obs.metrics

    def history(self) -> list[dict]:
        """The audit log, oldest first."""
        self._check_open()
        return self._warehouse.history()

    def provenance(self, event: str) -> dict | None:
        """The audit entry of the update whose confidence minted *event*."""
        self._check_open()
        return self._warehouse.provenance(event)

    def __repr__(self) -> str:
        state = "closed" if self._closed else repr(self._warehouse)
        return f"Session({state})"


class Snapshot:
    """A snapshot-isolated read view pinned at one commit sequence.

    Queries stream lazily exactly like session queries, but against the
    pinned document generation: commits made after the pin — by this
    session or any writer on the same handle — are invisible here.
    Evaluation shares the warehouse engine (plan cache, Shannon memo);
    the engine keeps a frozen per-root walk and condition index for the
    pinned generation, dropped when the last pin on it is released.
    """

    __slots__ = ("_session", "_pin", "_config", "_closed")

    def __init__(self, session: Session, pin: DocumentPin) -> None:
        self._session = session
        self._pin = pin
        # Captured at pin time: the snapshot keeps the handle's match
        # semantics even if read after the session starts closing down.
        self._config = session._warehouse._match_config
        self._closed = False

    @property
    def sequence(self) -> int:
        """The commit sequence this snapshot is pinned at."""
        return self._pin.sequence

    @property
    def document(self) -> FuzzyTree:
        """The pinned document (immutable: writers copy on write)."""
        self._check_open()
        return self._pin.document

    def query(self, query=None, *, planner: bool = True, options=None) -> ResultSet:
        """A lazy result stream evaluated against the pinned state.

        Accepts the same (*query*, *options*) forms as
        :meth:`Session.query`.
        """
        self._check_open()
        return _result_set(self, query, planner, options)

    def _iter_context(self):
        # Already pinned for the snapshot's whole lifetime — no
        # per-iteration pin (release is None).  The warehouse engine is
        # shared: its per-root view of the pinned generation is frozen
        # (copy-on-write), and its caches are thread-safe.
        self._check_open()
        return (
            self._pin.document,
            self._session._warehouse._engine,
            self._config,
            None,
            self._session._warehouse._obs,
        )

    def _provenance(self, event: str) -> dict | None:
        self._check_open()
        return self._session._warehouse.provenance(event)

    def close(self) -> None:
        """Release the pin; idempotent and race-safe.  Queries raise
        afterwards."""
        self._closed = True
        self._pin.release()  # pin release is itself idempotent
        self._session._forget_snapshot(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("snapshot is closed")

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"seq={self._pin.sequence}"
        return f"Snapshot({state})"


class SessionBatch:
    """Buffers updates for one batched commit (one WAL append + fsync)."""

    __slots__ = ("_session", "_pending", "reports")

    def __init__(self, session: Session) -> None:
        self._session = session
        self._pending: list = []
        #: Per-transaction reports, populated when the batch commits.
        self.reports: list[UpdateReport] | None = None

    def update(self, transaction, confidence: float | None = None) -> None:
        """Buffer a transaction (validated now, applied at commit)."""
        transaction = compile_transaction(transaction)
        if confidence is not None:
            transaction = transaction.with_confidence(confidence)
        self._pending.append(transaction)

    def __len__(self) -> int:
        return len(self._pending)

    def __enter__(self) -> "SessionBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and self._pending:
            self.reports = self._session.update_many(self._pending)
            self._pending = []
