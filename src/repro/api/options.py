"""``QueryOptions`` — the one per-query knob surface every layer shares.

Before v2.0, each serving layer grew its own ad-hoc kwarg list
(``pattern, limit, timeout_ms, document, ...``): adding a per-query
knob meant four divergent signatures (Session, Collection, HTTP app,
cluster supervisor/worker).  :class:`QueryOptions` is the single frozen
description of a query's execution envelope, threaded *unchanged*
through every layer:

* in-process — ``session.query(options=...)`` or the fluent
  ``ResultSet`` refinements (``limit`` / ``order_by_probability`` /
  ``min_probability``), which are sugar over ``dataclasses.replace``;
* over HTTP — ``POST /query`` bodies validate through
  :meth:`QueryOptions.from_json`, which reports **every** invalid
  field in one structured 400 instead of failing on the first bad key;
* across the cluster wire — the supervisor ships
  :meth:`QueryOptions.to_json` inside the QUERY frame and the worker
  reconstructs the identical object, so per-shard execution follows
  the same semantics as a local query.

The dataclass is frozen and :meth:`to_json`/:meth:`from_json` round-trip
exactly (property-tested), which is what makes the cross-layer
byte-parity contract checkable: same options object, same rows, same
bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.errors import QueryError

__all__ = ["QueryOptions", "QueryOptionsError", "ORDERS", "PLANS"]

#: Row orderings: the engine's deterministic match order, or decreasing
#: probability (ties broken by that same match order).
ORDERS = ("document", "probability")
#: Plan selection: the cost-based planner, or the fixed-strategy
#: matcher (the E9 ablation baseline).
PLANS = ("auto", "fixed")

#: json key -> dataclass field for the wire form (everything else maps
#: by its own name).
_JSON_ALIASES = {"order_by": "order"}
_FIELD_TO_JSON = {"order": "order_by"}


class QueryOptionsError(QueryError):
    """One or more invalid query options, reported together.

    ``errors`` is a list of ``{"field", "message"}`` records — the HTTP
    layer embeds it verbatim in the 400 payload so a client fixing a
    request sees every problem at once, not one per round trip.
    """

    def __init__(self, errors: list[dict]) -> None:
        self.errors = list(errors)
        super().__init__(
            "; ".join(f"{e['field']}: {e['message']}" for e in self.errors)
            or "invalid query options"
        )


def _validate(opts: "QueryOptions") -> list[dict]:
    """Every field problem of *opts*, as ``{"field", "message"}`` records."""
    errors: list[dict] = []

    def bad(field: str, message: str) -> None:
        errors.append({"field": field, "message": message})

    if opts.pattern is not None and not isinstance(opts.pattern, str):
        bad("pattern", f"must be a string, got {opts.pattern!r}")
    limit = opts.limit
    if limit is not None and (
        isinstance(limit, bool) or not isinstance(limit, int) or limit < 0
    ):
        bad("limit", f"must be a non-negative integer, got {limit!r}")
    if opts.order not in ORDERS:
        bad("order_by", f"must be one of {ORDERS}, got {opts.order!r}")
    min_p = opts.min_probability
    if min_p is not None and (
        isinstance(min_p, bool)
        or not isinstance(min_p, (int, float))
        or not 0.0 <= min_p <= 1.0
    ):
        bad("min_probability", f"must be a number in [0, 1], got {min_p!r}")
    epsilon = opts.epsilon
    if epsilon is not None and (
        isinstance(epsilon, bool)
        or not isinstance(epsilon, (int, float))
        or not 0.0 < epsilon < 1.0
    ):
        bad("epsilon", f"must be a number in (0, 1), got {epsilon!r}")
    deadline = opts.deadline_ms
    if deadline is not None and (
        isinstance(deadline, bool)
        or not isinstance(deadline, int)
        or deadline <= 0
    ):
        bad("deadline_ms", f"must be a positive integer, got {deadline!r}")
    if opts.document is not None and not isinstance(opts.document, str):
        bad("document", f"must be a string, got {opts.document!r}")
    if opts.plan not in PLANS:
        bad("plan", f"must be one of {PLANS}, got {opts.plan!r}")
    return errors


@dataclass(frozen=True)
class QueryOptions:
    """A frozen, layer-independent description of one query execution.

    Fields
    ------
    pattern:
        The TPWJ pattern text (optional in-process, where the compiled
        pattern travels separately; required on the wire).
    limit:
        At most this many rows, pushed into the backtracking join.
    order:
        ``"document"`` (the engine's deterministic match order) or
        ``"probability"`` (decreasing probability, executed as
        branch-and-bound top-k when a limit is set).
    min_probability:
        Drop rows below this probability; the bound is pushed into the
        join so sub-threshold branches are pruned, never enumerated.
    epsilon:
        Target half-width of the Monte-Carlo confidence interval; its
        presence selects the anytime estimate path.
    deadline_ms:
        Budget for the anytime estimator: sampling stops at the
        deadline and returns the interval reached by then.
    document:
        Collection shard key to restrict the query to (collections
        only).
    plan:
        ``"auto"`` (cost-based planner) or ``"fixed"`` (the ablation
        baseline matcher).
    """

    pattern: str | None = None
    limit: int | None = None
    order: str = "document"
    min_probability: float | None = None
    epsilon: float | None = None
    deadline_ms: int | None = None
    document: str | None = None
    plan: str = "auto"

    def __post_init__(self) -> None:
        errors = _validate(self)
        if errors:
            raise QueryOptionsError(errors)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def is_estimate(self) -> bool:
        """True when the anytime Monte-Carlo path was requested."""
        return self.epsilon is not None or self.deadline_ms is not None

    @property
    def is_bounded(self) -> bool:
        """True when execution needs the probability-bounded join."""
        return self.order == "probability" or (
            self.min_probability is not None and self.min_probability > 0.0
        )

    @property
    def use_planner(self) -> bool:
        return self.plan != "fixed"

    def replace(self, **changes) -> "QueryOptions":
        """A copy with *changes* applied (validation re-runs)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Wire form
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        """The compact JSON form: defaults omitted, wire field names.

        ``QueryOptions.from_json(options.to_json(),
        require_pattern=False)`` reconstructs an equal object — the
        round-trip property the cluster wire and the HTTP surface rely
        on.
        """
        out: dict = {}
        for field in fields(self):
            value = getattr(self, field.name)
            if value == field.default:
                continue
            out[_FIELD_TO_JSON.get(field.name, field.name)] = value
        return out

    @classmethod
    def from_json(
        cls,
        payload,
        *,
        require_pattern: bool = True,
        ignore: tuple[str, ...] = (),
    ) -> "QueryOptions":
        """Validate a JSON payload into options, reporting every error.

        Unlike field-at-a-time validation (where the first bad key
        wins), this collects **all** problems — unknown keys, type
        mismatches, out-of-range values, a missing pattern — into one
        :class:`QueryOptionsError`.  *ignore* names transport-level
        keys (``timeout_ms``) that may ride in the same payload without
        being options.
        """
        if not isinstance(payload, dict):
            raise QueryOptionsError(
                [{"field": "", "message": f"payload must be an object, got {payload!r}"}]
            )
        errors: list[dict] = []
        known = {f.name for f in fields(cls)} - set(_FIELD_TO_JSON)
        known |= set(_JSON_ALIASES)
        values: dict = {}
        for key, value in payload.items():
            if key in ignore:
                continue
            if key not in known:
                errors.append(
                    {"field": key, "message": "unknown query option"}
                )
                continue
            values[_JSON_ALIASES.get(key, key)] = value
        if require_pattern and values.get("pattern") is None:
            errors.append(
                {"field": "pattern", "message": "missing required field"}
            )
        probe = object.__new__(cls)
        for field in fields(cls):
            object.__setattr__(
                probe, field.name, values.get(field.name, field.default)
            )
        errors.extend(_validate(probe))
        if errors:
            raise QueryOptionsError(errors)
        return cls(**values)
