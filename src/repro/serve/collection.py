"""Multi-document collections: N warehouses served as one store.

The paper's warehouse holds *one* probabilistic document; a real
deployment holds many (one per entity being tracked — a person, a
product, a sensor).  A :class:`Collection` is a directory of
independent warehouses ("shards", one subdirectory per document key)
served through a shared :class:`~repro.serve.pool.SessionPool`:

* **updates route by document key** — each lands on exactly one shard,
  serialized by that shard's write lock, so writers on different
  documents never contend;
* **queries fan out** — every shard evaluates the pattern on a pool
  worker, and the merged result streams in deterministic
  ``(shard, row)`` order (shards in sorted key order, rows in each
  shard's deterministic match order), with ``limit(n)`` pushed into
  every shard's streaming protocol *and* short-circuiting the fan-out:
  once n rows have been emitted, shards that have not started are
  cancelled.

On disk a collection is::

    my-collection/
        collection.json      # format marker
        alice/               # one warehouse per document key
            document.xml
            meta.json
            ...
        bob/
            ...

Document keys are directory names and restricted to
``[A-Za-z0-9._-]`` (no leading dot).  Within one shard every
guarantee of :class:`~repro.api.session.Session` holds — including
snapshot-pinned concurrent readers; across shards the documents are
independent (separate event tables), which is why query results carry
their shard key and are never merged across documents.
"""

from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path
from time import perf_counter

from repro.api.options import QueryOptions
from repro.api.session import Session, connect
from repro.core.fuzzy_tree import FuzzyTree
from repro.core.update import UpdateReport
from repro.errors import QueryError, WarehouseError
from repro.serve.pool import SessionPool
from repro.tpwj.match import DEFAULT_CONFIG, MatchConfig
from repro.warehouse.warehouse import (
    USE_DEFAULT_OBSERVABILITY,
    _resolve_observability,
)

__all__ = ["Collection", "CollectionResultSet", "ShardRow", "connect_collection"]

_MANIFEST = "collection.json"
_FORMAT = "repro-collection-v1"
_KEY_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9._-]*$")


def _check_key(key: str) -> str:
    if not isinstance(key, str) or not _KEY_RE.match(key):
        raise WarehouseError(
            f"invalid document key {key!r}: keys are directory names "
            "([A-Za-z0-9._-], no leading dot)"
        )
    return key


def connect_collection(
    path: str | Path,
    *,
    create: bool = False,
    workers: int | None = None,
    mode: str = "thread",
    shard_processes: int | None = None,
    force_processes: bool = False,
    replication_factor: int = 1,
    match_config: MatchConfig = DEFAULT_CONFIG,
    auto_simplify_factor: float | None = None,
    snapshot_every: int = 64,
    wal_bytes_limit: int = 4 * 1024 * 1024,
    compact_on_close: bool = True,
    observability=USE_DEFAULT_OBSERVABILITY,
) -> "Collection":
    """Open (or with ``create=True`` initialise) the collection at *path*.

    *mode* picks the serving engine:

    * ``"thread"`` (default) — every shard opens in this process,
      queries fan out on a shared :class:`~repro.serve.pool.SessionPool`;
    * ``"process"`` — shards live in worker *processes* behind a
      consistent-hash ring (:class:`~repro.serve.cluster.ProcessCollection`),
      so reader throughput scales past the GIL; *shard_processes* sets
      the worker count (default: cores, clamped to [2, 8]).  On a
      single-core host the process engine only adds IPC cost, so the
      call degrades to thread mode unless *force_processes* is set;
    * ``"auto"`` — process mode when the machine has ≥ 2 cores, thread
      mode otherwise.

    In process mode, *replication_factor* = R keeps a copy of every
    document on its R distinct ring successors: writes are
    acknowledged by the primary and written through to replicas, reads
    fail over to a replica when the primary is down (see
    :class:`~repro.serve.cluster.ProcessCollection`).  Thread mode has
    one failure domain — this process — so the factor is ignored there.

    In thread mode, every existing shard is opened eagerly — the
    collection owns each shard's single-writer lock from here to
    :meth:`Collection.close`.  The session keywords apply to every
    shard it opens or creates.  One *observability* panel (by default
    the process-global one) is shared by the pool and every shard, so
    fan-out spans, per-shard timings and queue-wait histograms land in
    one place.  In process mode the panel instruments the supervisor
    (``cluster.*`` families); worker-process internals are aggregated
    through :meth:`stats` and :meth:`health` instead.
    """
    if mode not in ("thread", "process", "auto"):
        raise WarehouseError(
            f"mode must be 'thread', 'process' or 'auto', got {mode!r}"
        )
    path = Path(path)
    manifest = path / _MANIFEST
    if create:
        if manifest.exists():
            raise WarehouseError(f"a collection already exists at {path}")
        path.mkdir(parents=True, exist_ok=True)
        manifest.write_text(
            json.dumps({"format": _FORMAT, "version": 1}, indent=2) + "\n",
            encoding="utf-8",
        )
    elif not Collection.is_collection(path):
        raise WarehouseError(f"no collection at {path} (missing {_MANIFEST})")

    if mode == "auto":
        mode = "process" if (os.cpu_count() or 1) >= 2 else "thread"
    if mode == "process" and not force_processes and (os.cpu_count() or 1) < 2:
        # One core: worker processes would time-slice the same CPU and
        # pay IPC on top — the thread pool is strictly better.
        mode = "thread"
    if mode == "process":
        if match_config is not DEFAULT_CONFIG:
            raise WarehouseError(
                "process mode cannot ship a custom match_config across "
                "the process boundary; use thread mode"
            )
        from repro.serve.cluster import ProcessCollection

        return ProcessCollection(
            path,
            shard_processes=(
                shard_processes
                if shard_processes is not None
                else max(2, min(8, os.cpu_count() or 2))
            ),
            session_options={
                "auto_simplify_factor": auto_simplify_factor,
                "snapshot_every": snapshot_every,
                "wal_bytes_limit": wal_bytes_limit,
                "compact_on_close": compact_on_close,
            },
            observability=observability,
            replication_factor=replication_factor,
        )

    obs = _resolve_observability(observability)
    session_options = {
        "match_config": match_config,
        "auto_simplify_factor": auto_simplify_factor,
        "snapshot_every": snapshot_every,
        "wal_bytes_limit": wal_bytes_limit,
        "compact_on_close": compact_on_close,
        "observability": obs,
    }
    collection = Collection(
        path, SessionPool(workers, observability=obs), session_options
    )
    try:
        collection._open_existing()
    except BaseException:
        collection.close()
        raise
    return collection


class ShardRow:
    """One merged query row: a shard's :class:`~repro.api.results.Row`
    plus the document key it came from."""

    __slots__ = ("document", "row")

    def __init__(self, document: str, row) -> None:
        #: The document key of the shard this row matched in.
        self.document = document
        #: The underlying per-shard row (probability, tree, bindings…).
        self.row = row

    @property
    def probability(self) -> float:
        return self.row.probability

    @property
    def tree(self):
        return self.row.tree

    def bindings(self) -> dict[str, str | None]:
        return self.row.bindings()

    def explain(self) -> list[dict]:
        return self.row.explain()

    def __repr__(self) -> str:
        return f"ShardRow({self.document!r}, {self.row!r})"


class CollectionResultSet:
    """A lazy, re-iterable fan-out query over a collection's shards.

    Immutable like :class:`~repro.api.results.ResultSet`
    (:meth:`limit` returns a new one).  Iteration submits one task per
    shard to the collection's pool (bounded concurrency), then yields
    :class:`ShardRow` objects in deterministic (shard, row) order:
    shards in sorted key order, each shard's rows in its engine's
    deterministic match order.  The global limit is pushed into every
    shard (a shard can contribute at most n of the first n rows) and
    short-circuits the fan-out: once n rows have been emitted, shard
    tasks that have not started are cancelled.
    """

    __slots__ = ("_collection", "_pattern", "_keys", "_options")

    def __init__(
        self,
        collection: "Collection",
        pattern,
        keys,
        limit=None,
        *,
        options: QueryOptions | None = None,
    ) -> None:
        self._collection = collection
        self._pattern = pattern
        self._keys = keys
        self._options = options if options is not None else QueryOptions(limit=limit)

    @property
    def options(self) -> QueryOptions:
        """The frozen execution envelope every shard receives."""
        return self._options

    @property
    def _limit(self):
        return self._options.limit

    def _replace(self, **changes) -> "CollectionResultSet":
        return CollectionResultSet(
            self._collection,
            self._pattern,
            self._keys,
            options=self._options.replace(**changes),
        )

    def limit(self, n: int) -> "CollectionResultSet":
        """At most *n* merged rows (early termination in every shard)."""
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            raise QueryError(f"limit must be a non-negative int, got {n!r}")
        current = self._options.limit
        capped = n if current is None else min(current, n)
        return self._replace(limit=capped)

    def order_by_probability(self) -> "CollectionResultSet":
        """Merged rows in decreasing-probability order.

        Each shard runs its own branch-and-bound top-k (the global
        top-k rows are necessarily within their shard's top-k), then
        the merge re-sorts deterministically by ``(probability desc,
        shard key, per-shard rank)`` and caps at the limit.  Unlike
        document order this is a barrier: every shard must report
        before the first row can be emitted.
        """
        return self._replace(order="probability")

    def min_probability(self, p) -> "CollectionResultSet":
        """Only rows with probability >= *p*, pruned inside every shard."""
        if isinstance(p, bool) or not isinstance(p, (int, float)) or not 0.0 <= p <= 1.0:
            raise QueryError(
                f"min_probability must be a number in [0, 1], got {p!r}"
            )
        current = self._options.min_probability
        floor = float(p) if current is None else max(current, float(p))
        return self._replace(min_probability=floor)

    def _shard_options(self) -> QueryOptions:
        # The routing field stays at this layer; shards get the rest.
        return self._options.replace(document=None)

    def _iter_probability(self):
        """The decreasing-probability merge (a fan-out barrier)."""
        collection = self._collection
        options = self._shard_options()
        limit = options.limit
        obs = collection._obs
        metrics = obs is not None and obs.metrics.enabled
        if metrics:
            obs.metrics.incr("serve.fanout_queries")
        t0 = perf_counter()

        def run_shard(session: Session):
            return session.query(self._pattern, options=options).all()

        futures = [
            (key, collection._pool.submit(run_shard, collection.document(key)))
            for key in self._keys
        ]
        merged = []
        for key, future in futures:
            merged.extend(
                (-row.probability, key, rank, row)
                for rank, row in enumerate(future.result())
            )
        merged.sort(key=lambda entry: entry[:3])
        if metrics:
            obs.metrics.observe("serve.fanout_seconds", perf_counter() - t0)
        for _neg, key, _rank, row in merged[:limit]:
            yield ShardRow(key, row)

    def __iter__(self):
        collection = self._collection
        options = self._options
        limit = options.limit
        if limit == 0:
            return
        if options.order == "probability":
            yield from self._iter_probability()
            return
        sessions = [
            (key, collection.document(key)) for key in self._keys
        ]
        shard_options = self._shard_options()
        obs = collection._obs
        tracing = obs is not None and obs.tracer.enabled
        metrics = obs is not None and obs.metrics.enabled

        # Flipped when the merge ends early (limit hit, consumer
        # abandoned the iterator, deadline cancel).  future.cancel()
        # only stops tasks the executor has not picked up; a task that
        # starts *after* the cancel decision — cancel() raced the
        # worker's pickup and lost — sees the flag at entry and returns
        # without touching its shard (no pin, no query, no rows).
        abandoned = threading.Event()

        if not tracing and not metrics:
            def run_shard(session: Session):
                if abandoned.is_set():
                    return []
                return session.query(self._pattern, options=shard_options).all()

            futures = [
                (key, collection._pool.submit(run_shard, session))
                for key, session in sessions
            ]
            emitted = 0
            try:
                for key, future in futures:
                    for row in future.result():
                        yield ShardRow(key, row)
                        emitted += 1
                        if limit is not None and emitted >= limit:
                            return
            finally:
                # Short-circuited (or the consumer stopped pulling):
                # shard tasks that have not started yet need not run.
                abandoned.set()
                for _key, future in futures:
                    future.cancel()
            return

        registry = obs.metrics
        if metrics:
            registry.incr("serve.fanout_queries")
        span = (
            obs.tracer.start(
                "fanout", pattern=self._pattern, shards=len(sessions)
            )
            if tracing
            else None
        )
        t0 = perf_counter()

        def run_shard(session: Session):
            # Worker-side timestamps: shard wall time excludes queue
            # wait (the pool's own histogram covers that) and the
            # merge-side blocking below.
            started = perf_counter()
            if abandoned.is_set():
                return [], started, started
            rows = session.query(self._pattern, options=shard_options).all()
            return rows, started, perf_counter()

        futures = [
            (key, collection._pool.submit(run_shard, session))
            for key, session in sessions
        ]
        emitted = 0
        waited = 0.0
        try:
            for key, future in futures:
                t_wait = perf_counter()
                rows, started, ended = future.result()
                waited += perf_counter() - t_wait
                shard_seconds = ended - started
                if span is not None:
                    span.record(
                        "shard", shard_seconds, document=key, rows=len(rows)
                    )
                if metrics:
                    registry.observe("serve.shard_seconds", shard_seconds)
                for row in rows:
                    yield ShardRow(key, row)
                    emitted += 1
                    if limit is not None and emitted >= limit:
                        return
        finally:
            abandoned.set()
            for _key, future in futures:
                future.cancel()
            total = perf_counter() - t0
            if span is not None:
                # Merge-side time the consumer spent outside shard
                # waits: yielding rows, bookkeeping, downstream work.
                span.record("merge", max(0.0, total - waited))
                span.attributes["rows"] = emitted
                obs.tracer.finish(span)
            if metrics:
                registry.observe("serve.fanout_seconds", total)

    def all(self) -> list[ShardRow]:
        """Materialize every merged row (honoring :meth:`limit`)."""
        return list(self)

    def first(self) -> ShardRow | None:
        """The first merged row, short-circuiting the rest."""
        for row in self.limit(1):
            return row
        return None

    def count(self) -> int:
        """Number of merged rows (honoring :meth:`limit`)."""
        return sum(1 for _ in self)

    def answers(self) -> list[tuple[str, object]]:
        """Per-shard ranked answers as ``(document key, FuzzyAnswer)``.

        Aggregation never crosses shards: each document has its own
        independent event table, so only rows *within* one shard can be
        disjoined.  Shards are fanned out on the pool exactly like row
        iteration; results come back in sorted key order, ranked within
        each shard.  A set limit bounds each shard's streamed prefix.
        """
        collection = self._collection
        obs = collection._obs
        metrics = obs is not None and obs.metrics.enabled
        if metrics:
            obs.metrics.incr("serve.fanout_queries")
        t0 = perf_counter()

        shard_options = self._shard_options()

        def run_shard(session: Session):
            return session.query(self._pattern, options=shard_options).answers()

        futures = [
            (key, collection._pool.submit(run_shard, collection.document(key)))
            for key in self._keys
        ]
        merged: list[tuple[str, object]] = []
        for key, future in futures:
            merged.extend((key, answer) for answer in future.result())
        if metrics:
            obs.metrics.observe("serve.fanout_seconds", perf_counter() - t0)
        return merged

    def estimate(
        self,
        *,
        epsilon: float | None = None,
        deadline_ms: int | None = None,
        seed: int = 0,
    ) -> list[tuple[str, object]]:
        """Anytime Monte-Carlo answers per shard, merged deterministically.

        Fans out :meth:`~repro.api.results.ResultSet.estimate` to every
        shard (each samples its own event table — estimates, like
        answers, never cross shards) and returns ``(document key,
        AnswerEstimate)`` pairs sorted by decreasing estimated
        probability, ties by shard key then the shard's own order.
        """
        if self._options.limit == 0:
            return []
        collection = self._collection
        shard_options = self._shard_options()
        obs = collection._obs
        metrics = obs is not None and obs.metrics.enabled
        if metrics:
            obs.metrics.incr("serve.fanout_queries")
        t0 = perf_counter()

        def run_shard(session: Session):
            return session.query(self._pattern, options=shard_options).estimate(
                epsilon=epsilon, deadline_ms=deadline_ms, seed=seed
            )

        futures = [
            (key, collection._pool.submit(run_shard, collection.document(key)))
            for key in self._keys
        ]
        merged = []
        for key, future in futures:
            merged.extend(
                (-estimate.probability, key, rank, estimate)
                for rank, estimate in enumerate(future.result())
            )
        merged.sort(key=lambda entry: entry[:3])
        if metrics:
            obs.metrics.observe("serve.fanout_seconds", perf_counter() - t0)
        return [(key, estimate) for _neg, key, _rank, estimate in merged]

    def __repr__(self) -> str:
        extras = self._options.to_json()
        extras.pop("pattern", None)
        rendered = "".join(f", {k}={v!r}" for k, v in sorted(extras.items()))
        return (
            f"CollectionResultSet({str(self._pattern)!r}, "
            f"{len(self._keys)} shards{rendered})"
        )


class Collection:
    """N independent warehouses served as one store (see module docs)."""

    def __init__(
        self, path: Path, pool: SessionPool, session_options: dict
    ) -> None:
        self._path = Path(path)
        self._pool = pool
        self._obs = pool.observability
        self._session_options = dict(session_options)
        self._sessions: dict[str, Session] = {}
        self._lock = threading.Lock()
        self._closed = False

    @property
    def observability(self):
        """The shared :class:`~repro.obs.Observability` panel (or None)."""
        return self._obs

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    @staticmethod
    def is_collection(path: str | Path) -> bool:
        """True when *path* holds a collection manifest."""
        manifest = Path(path) / _MANIFEST
        try:
            payload = json.loads(manifest.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return False
        return isinstance(payload, dict) and payload.get("format") == _FORMAT

    @property
    def path(self) -> Path:
        return self._path

    def _open_existing(self) -> None:
        """Open a session on every shard directory found on disk."""
        for entry in sorted(self._path.iterdir()):
            if entry.is_dir() and (entry / "document.xml").exists():
                key = _check_key(entry.name)
                self._sessions[key] = connect(entry, **self._session_options)
        self._sessions = dict(sorted(self._sessions.items()))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close every shard session and the pool; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
            self._sessions = {}
        self._pool.shutdown()
        for session in sessions:
            session.close()

    def __enter__(self) -> "Collection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise WarehouseError("collection is closed")

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------

    def keys(self) -> list[str]:
        """The document keys, sorted (the shard order queries merge in)."""
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._sessions

    def document(self, key: str) -> Session:
        """The session serving document *key* (raises on unknown keys)."""
        self._check_open()
        with self._lock:
            try:
                return self._sessions[key]
            except KeyError:
                raise WarehouseError(
                    f"no document {key!r} in collection {self._path}"
                ) from None

    def create_document(
        self,
        key: str,
        *,
        root: str | None = None,
        document: FuzzyTree | None = None,
    ) -> Session:
        """Add a new document under *key* (a fresh shard warehouse).

        Exactly like :func:`repro.connect` with ``create=True``: pass
        *document* (a :class:`FuzzyTree`) or *root* (the label of an
        empty document root).
        """
        self._check_open()
        _check_key(key)
        with self._lock:
            if key in self._sessions:
                raise WarehouseError(f"document {key!r} already exists")
            session = connect(
                self._path / key,
                create=True,
                root=root,
                document=document,
                **self._session_options,
            )
            self._sessions[key] = session
            self._sessions = dict(sorted(self._sessions.items()))
        return session

    # ------------------------------------------------------------------
    # Updates (routed)
    # ------------------------------------------------------------------

    def update(
        self, key: str, transaction, confidence: float | None = None
    ) -> UpdateReport:
        """Apply one update to document *key* and commit it durably."""
        return self.document(key).update(transaction, confidence)

    def update_many(
        self, key: str, transactions, confidence: float | None = None
    ) -> list[UpdateReport]:
        """Apply a batch to document *key* as one commit."""
        return self.document(key).update_many(transactions, confidence=confidence)

    # ------------------------------------------------------------------
    # Queries (fanned out)
    # ------------------------------------------------------------------

    def query(
        self,
        query=None,
        keys: list[str] | None = None,
        *,
        options: QueryOptions | None = None,
    ) -> CollectionResultSet:
        """A lazy fan-out query over every shard (or just *keys*).

        Returns a :class:`CollectionResultSet`; nothing runs until it
        is iterated.  *options* carries the full execution envelope
        (and may substitute for *query* via its ``pattern`` field);
        its ``document`` field, when set, restricts the fan-out to
        that one shard.
        """
        self._check_open()
        if options is not None:
            if not isinstance(options, QueryOptions):
                raise QueryError(
                    f"options must be a QueryOptions, got {options!r}"
                )
            if query is None:
                if options.pattern is None:
                    raise QueryError(
                        "query() needs a pattern: pass one positionally "
                        "or set options.pattern"
                    )
                query = options.pattern
            if options.document is not None and keys is None:
                keys = [options.document]
        elif query is None:
            raise QueryError(
                "query() needs a pattern (string, Pattern or builder) "
                "or options="
            )
        if keys is None:
            keys = self.keys()
        else:
            keys = list(keys)
            for key in keys:
                self.document(key)  # validate early, before the fan-out
        # Compile once, share across shards: patterns are immutable and
        # every shard engine re-keys matches onto its own plan anyway.
        from repro.api.builders import compile_pattern

        return CollectionResultSet(
            self, compile_pattern(query), keys, options=options
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Aggregate + per-document statistics and pool accounting."""
        self._check_open()
        with self._lock:
            sessions = dict(self._sessions)
        documents = {}
        totals = {"nodes": 0, "declared_events": 0, "read_sessions": 0, "sequence": 0}
        for key, session in sessions.items():
            info = session.stats()
            documents[key] = info
            for name in totals:
                totals[name] += info.get(name, 0)
        return {
            "documents": documents,
            "document_count": len(documents),
            "totals": totals,
            "pool": self._pool.stats(),
        }

    def health(self) -> dict:
        """Per-shard liveness: ``{"shards": {key: {...}}}``.

        The same shape process mode reports, so ``/healthz`` and
        ``serve-stats`` consumers never branch on the engine.  In-thread
        shards have no supervisor, hence ``respawns`` is always 0.
        """
        self._check_open()
        with self._lock:
            sessions = dict(self._sessions)
        shards = {}
        for key, session in sessions.items():
            info = session.warehouse.health()
            shards[key] = {
                "alive": bool(info.get("alive")),
                "wal_depth": info.get("wal_depth"),
                "respawns": 0,
            }
        return {"shards": shards}

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"{len(self._sessions)} documents"
        return f"Collection({self._path}, {state})"
