"""``repro serve``: a stdlib-only asyncio HTTP/JSON front end.

Two layers, deliberately separable:

* :mod:`repro.serve.http.app` — the application: payload validation,
  worker-side query/update/stats execution, deterministic JSON
  encoding, error-family → HTTP-status mapping.  No sockets.
* :mod:`repro.serve.http.server` — the asyncio front end: HTTP/1.1
  keep-alive parsing, admission control with load-shedding, deadline
  plumbing, metrics, graceful drain, and the ``repro serve`` /
  test-harness entry points.

This package is *not* imported by ``repro.serve`` eagerly —
``repro.cli`` imports ``repro.serve`` at module load, and the error
payloads here borrow the CLI's exit-code mapping, so the dependency
must stay one-way until call time.
"""

from repro.serve.http.app import (
    Application,
    BadRequest,
    canonical_json,
    encode_estimate_row,
    encode_row,
    error_body,
    estimate_response_body,
    query_response_body,
    status_for,
)
from repro.serve.http.server import HTTPServer, ServerThread, run_server

__all__ = [
    "Application",
    "BadRequest",
    "HTTPServer",
    "ServerThread",
    "canonical_json",
    "encode_estimate_row",
    "encode_row",
    "error_body",
    "estimate_response_body",
    "query_response_body",
    "run_server",
    "status_for",
]
