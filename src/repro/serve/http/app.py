"""The HTTP front door's application layer: JSON in, JSON out.

This module is everything about ``repro serve`` that is *not* sockets:
request payload validation, query/update/stats execution against a
:class:`~repro.api.session.Session` or
:class:`~repro.serve.collection.Collection`, deterministic JSON
encoding of rows and reports, and the mapping from the library's error
hierarchy to HTTP statuses.

Two contracts matter to callers:

* **Determinism** — :func:`query_response_body` is byte-deterministic
  (sorted keys, compact separators, ``repr``-exact floats), so an HTTP
  ``/query`` response with ``limit=n`` is byte-identical to encoding
  the first *n* rows of the equivalent in-process
  :class:`~repro.api.results.ResultSet` — property-tested in
  ``tests/test_http.py``.
* **Error parity** — :func:`error_body` carries the same family
  classification as the CLI: the payload embeds
  :func:`repro.cli.exit_code_for`'s exit code next to the HTTP status,
  so scripts driving the wire and scripts driving the CLI branch on
  one vocabulary.

Query execution is deadline-aware: :meth:`Application.query` runs on a
pool worker with an *abort* callable threaded into the row stream
(:meth:`ResultSet.stream`), so a deadline flipped by the event loop
cancels the underlying streamed iteration at the next row boundary and
the iteration pin drains before the 504 goes out.
"""

from __future__ import annotations

import json
from contextlib import closing
from dataclasses import asdict
from time import monotonic

from repro.api.options import QueryOptions, QueryOptionsError
from repro.errors import (
    PatternSyntaxError,
    QueryCancelledError,
    ReproError,
    SessionClosedError,
    ShardUnavailableError,
    WarehouseCorruptError,
    WarehouseError,
    WarehouseLockedError,
)
from repro.serve.cluster import ProcessCollection
from repro.serve.collection import Collection
from repro.updates.transaction import TransactionBatch
from repro.xmlio.xupdate import updates_from_string

__all__ = [
    "Application",
    "canonical_json",
    "encode_estimate_row",
    "encode_row",
    "error_body",
    "estimate_response_body",
    "query_response_body",
    "retry_after_headers",
    "status_for",
]


def canonical_json(payload) -> bytes:
    """Deterministic JSON bytes: sorted keys, compact, repr-exact floats."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def encode_row(row) -> dict:
    """One streamed row as a JSON-ready record.

    Works for both per-session :class:`~repro.api.results.Row` and
    fan-out :class:`~repro.serve.collection.ShardRow` (which adds the
    ``document`` key of the shard the row matched in).  Reading
    ``probability`` here forces the lazy computation on the worker
    thread — never on the event loop.
    """
    record = {
        "probability": row.probability,
        "tree": row.tree.canonical(),
        "bindings": row.bindings(),
    }
    document = getattr(row, "document", None)
    if document is not None:
        record["document"] = document
    return record


def query_response_body(rows: list[dict]) -> bytes:
    """The exact ``POST /query`` response body for encoded *rows*."""
    return canonical_json({"count": len(rows), "rows": rows})


def encode_estimate_row(estimate, document: str | None = None) -> dict:
    """One anytime Monte-Carlo answer as a JSON-ready record.

    Same determinism contract as :func:`encode_row`: a fixed seed
    yields identical samples in-process and behind the wire, so the
    encoded estimate is byte-identical across layers.
    """
    record = {
        "probability": estimate.probability,
        "stderr": estimate.stderr,
        "samples": estimate.samples,
        "occurrences": estimate.occurrences,
        "tree": estimate.tree.canonical(),
    }
    if document is not None:
        record["document"] = document
    return record


def estimate_response_body(rows: list[dict]) -> bytes:
    """The ``POST /query`` response body for the anytime estimate path.

    ``"estimate": true`` marks the rows as confidence-interval
    estimates (probability ± stderr), not exact probabilities.
    """
    return canonical_json({"count": len(rows), "estimate": True, "rows": rows})


def status_for(exc: BaseException) -> int:
    """The HTTP status for a library error (500 for anything unknown)."""
    if isinstance(exc, QueryCancelledError):
        return 504  # deadline expired mid-stream
    if isinstance(exc, SessionClosedError):
        return 503  # shutting down / handle gone
    if isinstance(exc, ShardUnavailableError):
        return 503  # worker died mid-request; retryable after respawn
    if isinstance(exc, WarehouseLockedError):
        return 423
    if isinstance(exc, WarehouseCorruptError):
        return 500
    if isinstance(exc, PatternSyntaxError):
        return 400
    if isinstance(exc, WarehouseError):
        return 500
    if isinstance(exc, ReproError):
        return 400  # invalid query/update/tree/event input
    return 500


def retry_after_headers(exc: BaseException, status: int) -> tuple:
    """Extra response headers telling a client when to come back.

    A 503 from a retry-exhausted :class:`ShardUnavailableError` gets
    ``Retry-After`` exactly like the 429 shed path: the shard is being
    respawned and will answer again in about a second — clients should
    back off, not hammer the recovering worker.
    """
    if status == 503 and isinstance(exc, ShardUnavailableError):
        return (("Retry-After", "1"),)
    return ()


def error_body(exc: BaseException, status: int | None = None) -> tuple[int, dict]:
    """(status, structured JSON error) for an exception.

    The payload reuses the CLI's family mapping: ``exit_code`` is what
    ``repro <command>`` would have exited with for the same error, so
    wire clients and shell scripts classify failures identically.
    """
    # Imported here: repro.cli imports repro.serve at module load; the
    # late import keeps the package graph acyclic.
    from repro.cli import exit_code_for

    if status is None:
        status = status_for(exc)
    payload = {
        "error": {
            "family": type(exc).__name__,
            "message": str(exc) or type(exc).__name__,
            "exit_code": exit_code_for(exc) if isinstance(exc, ReproError) else None,
            "status": status,
        }
    }
    if isinstance(exc, QueryOptionsError):
        # Every invalid field at once — a client fixing its request
        # sees the full list in one round trip.
        payload["error"]["fields"] = exc.errors
    return status, payload


class BadRequest(ReproError):
    """A malformed HTTP payload (missing field, wrong type, bad route use)."""


def _field(payload: dict, name: str, types, *, required: bool = False):
    value = payload.get(name)
    if value is None:
        if required:
            raise BadRequest(f"missing required field {name!r}")
        return None
    if isinstance(value, bool) or not isinstance(value, types):
        raise BadRequest(f"field {name!r} has the wrong type: {value!r}")
    return value


class Application:
    """Request execution over one served Session or Collection.

    All three execution methods (:meth:`query`, :meth:`update`,
    :meth:`stats`) are **worker-side**: the HTTP layer dispatches them
    to its :class:`~repro.serve.pool.SessionPool` so a document walk or
    an fsync never blocks the event loop.
    """

    def __init__(self, target, *, own_target: bool = False) -> None:
        self._target = target
        self._is_process = isinstance(target, ProcessCollection)
        self._is_collection = isinstance(target, Collection) or self._is_process
        self._own_target = own_target

    @property
    def target(self):
        return self._target

    @property
    def is_collection(self) -> bool:
        return self._is_collection

    @property
    def observability(self):
        return self._target.observability

    def close(self) -> None:
        """Close the served session/collection iff this app opened it."""
        if self._own_target:
            self._target.close()

    # ------------------------------------------------------------------
    # Worker-side request execution
    # ------------------------------------------------------------------

    def query(self, payload: dict, deadline: float | None, cancel) -> bytes:
        """Execute ``POST /query``; returns the exact response body.

        *deadline* is a :func:`time.monotonic` timestamp (or None);
        *cancel* is a :class:`threading.Event` the event loop sets when
        its own backstop timeout fires or the client vanishes.  Both
        feed one abort hook polled at every row boundary — on abort the
        stream closes (pins released) and
        :class:`~repro.errors.QueryCancelledError` propagates.

        The body validates through :meth:`QueryOptions.from_json`: one
        structured 400 lists **every** invalid field (``timeout_ms`` is
        transport-level and consumed by the route, so it is ignored
        here).
        """
        options = QueryOptions.from_json(payload, ignore=("timeout_ms",))

        if deadline is None and cancel is None:
            abort = None
        elif cancel is None:
            abort = lambda: monotonic() >= deadline  # noqa: E731
        elif deadline is None:
            abort = cancel.is_set
        else:
            abort = lambda: cancel.is_set() or monotonic() >= deadline  # noqa: E731
        if abort is not None and abort():
            # Queue wait already consumed the deadline: cancel before
            # touching the warehouse at all.
            raise QueryCancelledError("deadline expired before execution began")

        if self._is_collection:
            document = options.document
            if document is not None and document not in self._target:
                raise BadRequest(f"no document {document!r} in the collection")
            results = self._target.query(options.pattern, options=options)
            if options.is_estimate:
                pairs = results.estimate()
                return estimate_response_body(
                    [encode_estimate_row(e, document=key) for key, e in pairs]
                )
            rows = []
            # The fan-out iterator is a generator: closing() guarantees
            # the short-circuit finally (abandon flag + future cancel)
            # runs even when the abort hook fires mid-merge.
            with closing(iter(results)) as stream:
                for row in stream:
                    rows.append(encode_row(row))
                    if abort is not None and abort():
                        raise QueryCancelledError(
                            "query cancelled by its abort hook"
                        )
            return query_response_body(rows)

        if options.document is not None:
            raise BadRequest("field 'document' only applies to collections")
        results = self._target.query(options=options)
        if options.is_estimate:
            return estimate_response_body(
                [encode_estimate_row(e) for e in results.estimate()]
            )
        with results.stream(abort=abort) as stream:
            rows = [encode_row(row) for row in stream]
        return query_response_body(rows)

    def update(self, payload: dict) -> bytes:
        """Execute ``POST /update``: one transaction or an xu:batch."""
        text = _field(payload, "xupdate", str, required=True)
        confidence = _field(payload, "confidence", (int, float))
        document = _field(payload, "document", str)
        if self._is_collection:
            if document is None:
                raise BadRequest(
                    "collections route updates by key: pass 'document'"
                )
            if document not in self._target:
                raise BadRequest(f"no document {document!r} in the collection")
            if self._is_process:
                # No local session: route through the supervisor, which
                # ships the transaction to the owning worker process.
                parsed = updates_from_string(text)
                if isinstance(parsed, TransactionBatch):
                    reports = self._target.update_many(
                        document, list(parsed), confidence
                    )
                    return canonical_json(
                        {"batch": True, "reports": [asdict(r) for r in reports]}
                    )
                report = self._target.update(document, parsed, confidence)
                return canonical_json({"batch": False, "report": asdict(report)})
            session = self._target.document(document)
        else:
            if document is not None:
                raise BadRequest("field 'document' only applies to collections")
            session = self._target
        parsed = updates_from_string(text)
        if isinstance(parsed, TransactionBatch):
            reports = session.update_many(parsed, confidence=confidence)
            return canonical_json(
                {"batch": True, "reports": [asdict(r) for r in reports]}
            )
        report = session.update(parsed, confidence=confidence)
        return canonical_json({"batch": False, "report": asdict(report)})

    def stats(self) -> bytes:
        """Execute ``GET /stats`` (per-document + pool for collections)."""
        return canonical_json(self._target.stats())

    def health(self) -> dict:
        """The ``GET /healthz`` payload: status plus per-shard liveness.

        Collections (thread and process engines alike) report
        ``{"shards": {key: {"alive", "wal_depth", "respawns"}}}``; the
        overall status degrades to ``"degraded"`` when any shard is
        down (a process worker mid-respawn).  A single served session
        reports its one warehouse under its directory name.
        """
        if self._is_collection:
            payload = self._target.health()
        else:
            info = self._target.warehouse.health()
            payload = {
                "shards": {
                    "document": {
                        "alive": bool(info.get("alive")),
                        "wal_depth": info.get("wal_depth"),
                        "respawns": 0,
                    }
                }
            }
        degraded = any(
            not shard["alive"] for shard in payload["shards"].values()
        )
        payload["status"] = "degraded" if degraded else "ok"
        return payload
