"""A stdlib-only asyncio HTTP/1.1 front door for a served warehouse.

``repro serve --port N`` exposes a :class:`~repro.api.session.Session`
or :class:`~repro.serve.collection.Collection` over the wire::

    POST /query         {"pattern": "//person", "limit": 5,
                         "timeout_ms": 2000, "document": "alice"}
    POST /update        {"xupdate": "<xu:modifications>…", "confidence": 0.9,
                         "document": "alice"}
    GET  /stats         document/WAL/pin statistics (per-shard for collections)
    GET  /metrics       Prometheus text exposition (repro.obs.export)
    GET  /metrics.json  structured dashboard: metrics + slow queries + traces
    GET  /healthz       {"status": "ok", "shards": {key: {alive, wal_depth,
                         respawns}}} — 503 when draining or any shard is down

Production concerns, each load-bearing:

* **The event loop never blocks on a document walk.**  Query, update
  and stats execution is dispatched to a
  :class:`~repro.serve.pool.SessionPool`; the loop only parses bytes,
  checks admission and awaits futures.
* **Bounded queue with load-shedding.**  At most ``workers +
  queue_depth`` requests are admitted at once; past that the server
  answers ``429`` with a ``Retry-After`` header instead of building an
  unbounded backlog (the open-loop half of E15 measures this).
* **Per-request deadlines cancel real work.**  Every ``/query``
  carries a deadline (server default, per-request ``timeout_ms``
  override).  The worker polls it at every row boundary through the
  stream's abort hook (:meth:`ResultSet.stream`), so a past-deadline
  request closes its row stream — iteration pins drain to zero — and
  the client gets a structured ``504``.  An event-loop backstop
  (deadline + grace) answers even if a single row wedges the worker.
* **HTTP keep-alive with an idle timeout.**  Connections persist
  across requests; one idle past ``idle_timeout`` is closed.
* **Graceful drain.**  SIGTERM (wired by the CLI) stops accepting,
  lets in-flight responses finish, then closes the pool and
  snapshot-closes the warehouse — committed updates are on disk before
  the process exits.

The server is deliberately HTTP/1.1-minimal: ``Content-Length`` bodies
only (no chunked uploads), no TLS, no auth — it is the paper's
warehouse service on a socket, not a reverse proxy.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from pathlib import Path
from time import monotonic, perf_counter

from repro.errors import QueryCancelledError, ReproError, WarehouseError
from repro.obs.export import render_json, render_prometheus
from repro.serve.collection import Collection, connect_collection
from repro.serve.http.app import (
    Application,
    BadRequest,
    canonical_json,
    error_body,
    retry_after_headers,
)
from repro.serve.pool import SessionPool

__all__ = ["HTTPServer", "ServerThread", "run_server"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    423: "Locked",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Seconds past a request's deadline before the event-loop backstop
#: stops waiting for the worker (which polls the same deadline at every
#: row boundary and normally answers long before this fires).
DEADLINE_GRACE = 2.0

#: Routes executed on the worker pool (and therefore subject to
#: admission control), keyed by (method, path).
_POOLED = {("POST", "/query"), ("POST", "/update"), ("GET", "/stats")}

_KNOWN_PATHS = {
    "/query": ("POST",),
    "/update": ("POST",),
    "/stats": ("GET",),
    "/metrics": ("GET",),
    "/metrics.json": ("GET",),
    "/healthz": ("GET",),
}


class _Request:
    __slots__ = ("method", "path", "headers", "body", "keep_alive")

    def __init__(self, method, path, headers, body, keep_alive) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive


class _ParseError(Exception):
    """Malformed request bytes; carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _render_response(
    status: int, body: bytes, content_type: str, keep_alive: bool, extra=()
) -> bytes:
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra:
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


class HTTPServer:
    """The asyncio front end over an :class:`Application` (see module docs).

    Lifecycle: ``await start()`` binds the socket (``port`` 0 picks a
    free one — read it back from :attr:`port`), :meth:`begin_drain`
    initiates the graceful shutdown (idempotent; callable from a signal
    handler), ``await wait_drained()`` returns once the last in-flight
    response is flushed and the warehouse is closed.
    """

    def __init__(
        self,
        app: Application,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int | None = None,
        queue_depth: int = 16,
        default_deadline: float = 30.0,
        max_deadline: float = 300.0,
        idle_timeout: float = 30.0,
        drain_grace: float = 10.0,
        max_body_bytes: int = 8 * 1024 * 1024,
        max_header_bytes: int = 32 * 1024,
    ) -> None:
        if queue_depth < 0:
            raise WarehouseError(f"queue_depth must be >= 0, got {queue_depth!r}")
        if default_deadline <= 0 or max_deadline <= 0:
            raise WarehouseError("deadlines must be positive")
        self._app = app
        self._host = host
        self._port = port
        self._pool = SessionPool(workers, observability=app.observability)
        self._capacity = self._pool.workers + queue_depth
        self._default_deadline = min(default_deadline, max_deadline)
        self._max_deadline = max_deadline
        self._idle_timeout = idle_timeout
        self._drain_grace = drain_grace
        self._max_body = max_body_bytes
        self._max_header = max_header_bytes
        self._obs = app.observability
        self._active = 0  # requests parsed and not yet responded
        self._draining = False
        self._connections: set[asyncio.StreamWriter] = set()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drain_task: asyncio.Task | None = None
        self._drained: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when 0 was asked)."""
        return self._port

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    def begin_drain(self) -> None:
        """Start the graceful shutdown; idempotent, event-loop thread only.

        (From another thread use
        ``loop.call_soon_threadsafe(server.begin_drain)`` — exactly what
        :meth:`ServerThread.stop` and the CLI's signal handlers do.)
        """
        if self._drain_task is None:
            self._drain_task = self._loop.create_task(self._drain())

    async def wait_drained(self) -> None:
        await self._drained.wait()

    async def _drain(self) -> None:
        # 1. Stop accepting: new connections are refused from here on;
        #    requests already parsed keep running, new requests on
        #    kept-alive connections get 503 (see _respond).
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        # 2. Finish in-flight responses, bounded by the grace period.
        deadline = self._loop.time() + self._drain_grace
        while self._active > 0 and self._loop.time() < deadline:
            await asyncio.sleep(0.005)
        # 3. Close lingering connections (idle keep-alives, stragglers
        #    past the grace period).
        for writer in list(self._connections):
            writer.close()
        # 4. Tear down execution: pool join and warehouse close both
        #    block (thread joins, compaction fsync) — off the loop.
        await asyncio.to_thread(self._pool.shutdown)
        await asyncio.to_thread(self._app.close)
        self._drained.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        obs = self._obs
        metrics = obs is not None and obs.metrics.enabled
        if metrics:
            obs.metrics.incr("http.connections")
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _ParseError as exc:
                    _, payload = error_body(BadRequest(str(exc)), exc.status)
                    writer.write(
                        _render_response(
                            exc.status,
                            canonical_json(payload),
                            "application/json",
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break  # clean EOF or idle timeout
                t0 = perf_counter()
                self._active += 1
                try:
                    status, body, ctype, extra = await self._respond(request)
                finally:
                    self._active -= 1
                keep = request.keep_alive and not self._draining
                writer.write(_render_response(status, body, ctype, keep, extra))
                await writer.drain()
                if metrics:
                    registry = obs.metrics
                    registry.incr("http.requests")
                    registry.observe("http.request_seconds", perf_counter() - t0)
                    if status >= 400:
                        registry.incr("http.error_responses")
                if not keep:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass  # client went away mid-request/response
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader) -> _Request | None:
        """Parse one request; None on clean EOF or idle timeout."""
        try:
            line = await asyncio.wait_for(reader.readline(), self._idle_timeout)
        except asyncio.TimeoutError:
            return None
        except (ConnectionResetError, BrokenPipeError):
            return None
        if not line:
            return None
        try:
            parts = line.decode("latin-1").split()
        except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
            raise _ParseError(400, "undecodable request line")
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _ParseError(400, "malformed request line")
        method, target, version = parts
        path = target.split("?", 1)[0]
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            try:
                hline = await asyncio.wait_for(reader.readline(), self._idle_timeout)
            except asyncio.TimeoutError:
                raise _ParseError(400, "timed out reading headers") from None
            if hline in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(hline)
            if header_bytes > self._max_header:
                raise _ParseError(431, "request headers too large")
            name, sep, value = hline.decode("latin-1").partition(":")
            if not sep:
                raise _ParseError(400, f"malformed header line {hline!r}")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            raise _ParseError(501, "chunked request bodies are not supported")
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _ParseError(400, "malformed Content-Length") from None
            if n < 0:
                raise _ParseError(400, "malformed Content-Length")
            if n > self._max_body:
                raise _ParseError(413, "request body too large")
            if n:
                body = await reader.readexactly(n)
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            keep_alive = connection == "keep-alive"
        else:
            keep_alive = connection != "close"
        return _Request(method, path, headers, body, keep_alive)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _respond(self, request) -> tuple[int, bytes, str, tuple]:
        """(status, body, content type, extra headers) for one request.

        ``/healthz`` and the metrics endpoints are answered inline and
        bypass admission control — observability must keep working
        while the serving queue is saturated.
        """
        path, method = request.path, request.method
        allowed = _KNOWN_PATHS.get(path)
        if allowed is None:
            status, payload = error_body(BadRequest(f"no route {path!r}"), 404)
            return status, canonical_json(payload), "application/json", ()
        if method not in allowed:
            status, payload = error_body(
                BadRequest(f"{method} not allowed on {path}"), 405
            )
            extra = (("Allow", ", ".join(allowed)),)
            return status, canonical_json(payload), "application/json", extra

        if path == "/healthz":
            if self._draining:
                return (
                    503,
                    canonical_json({"status": "draining"}),
                    "application/json",
                    (),
                )
            # Off the loop (process collections do a short IPC fan-out)
            # but NOT on the pool: health must answer while the serving
            # queue is saturated.
            try:
                payload = await asyncio.to_thread(self._app.health)
            except BaseException as exc:
                if isinstance(exc, (asyncio.CancelledError, KeyboardInterrupt)):
                    raise
                status, payload = error_body(exc, 503)
                return status, canonical_json(payload), "application/json", ()
            status = 200 if payload.get("status") == "ok" else 503
            return status, canonical_json(payload), "application/json", ()

        if path in ("/metrics", "/metrics.json"):
            obs = self._obs
            if obs is None:
                status, payload = error_body(
                    ReproError("no observability panel attached"), 503
                )
                return status, canonical_json(payload), "application/json", ()
            if path == "/metrics":
                text = render_prometheus(obs.metrics)
                return (
                    200,
                    text.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                    (),
                )
            text = render_json(obs.metrics, obs)
            return 200, text.encode("utf-8"), "application/json", ()

        return await self._dispatch_pooled(request)

    async def _dispatch_pooled(self, request) -> tuple[int, bytes, str, tuple]:
        obs = self._obs
        metrics = obs is not None and obs.metrics.enabled
        if self._draining:
            status, payload = error_body(
                WarehouseError("server is draining"), 503
            )
            return status, canonical_json(payload), "application/json", ()
        if self._active > self._capacity:
            # Load shed: _active counts this request too, so the bound
            # admits capacity requests and rejects the capacity+1-th.
            if metrics:
                obs.metrics.incr("http.shed_requests")
            status, payload = error_body(
                WarehouseError(
                    f"request queue is full ({self._capacity} in flight)"
                ),
                429,
            )
            extra = (("Retry-After", "1"),)
            return status, canonical_json(payload), "application/json", extra
        if metrics:
            obs.metrics.set_gauge("http.inflight_requests", self._active)

        try:
            payload = json.loads(request.body) if request.body else {}
        except json.JSONDecodeError as exc:
            status, body = error_body(BadRequest(f"invalid JSON body: {exc}"))
            return status, canonical_json(body), "application/json", ()
        if not isinstance(payload, dict):
            status, body = error_body(BadRequest("JSON body must be an object"))
            return status, canonical_json(body), "application/json", ()

        route = request.path
        t0 = perf_counter()
        try:
            if route == "/query":
                timeout_ms = payload.get("timeout_ms")
                if timeout_ms is not None and (
                    isinstance(timeout_ms, bool)
                    or not isinstance(timeout_ms, (int, float))
                    or timeout_ms < 0
                ):
                    raise BadRequest(
                        f"field 'timeout_ms' must be a number >= 0, "
                        f"got {timeout_ms!r}"
                    )
                timeout = (
                    self._default_deadline
                    if timeout_ms is None
                    else min(timeout_ms / 1000.0, self._max_deadline)
                )
                deadline = monotonic() + timeout
                cancel = threading.Event()
                future = self._pool.submit(
                    self._app.query, payload, deadline, cancel
                )
                try:
                    body = await asyncio.wait_for(
                        asyncio.wrap_future(future),
                        timeout + DEADLINE_GRACE,
                    )
                except asyncio.TimeoutError:
                    # Backstop: the worker wedged inside one row.  Tell
                    # it to stop at the next boundary and answer now.
                    cancel.set()
                    raise QueryCancelledError(
                        f"deadline of {timeout:.3f}s expired"
                    ) from None
                finally:
                    if metrics:
                        obs.metrics.observe(
                            "http.query_seconds", perf_counter() - t0
                        )
            elif route == "/update":
                future = self._pool.submit(self._app.update, payload)
                body = await asyncio.wrap_future(future)
            else:  # /stats
                future = self._pool.submit(self._app.stats)
                body = await asyncio.wrap_future(future)
        except BaseException as exc:
            if isinstance(exc, (asyncio.CancelledError, KeyboardInterrupt)):
                raise
            if metrics and isinstance(exc, QueryCancelledError):
                obs.metrics.incr("http.deadline_timeouts")
            status, payload = error_body(exc)
            extra = retry_after_headers(exc, status)
            return status, canonical_json(payload), "application/json", extra
        return 200, body, "application/json", ()


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def _open_target(
    path: str | Path,
    *,
    workers: int | None = None,
    shard_processes: int | None = None,
    replication_factor: int = 1,
):
    """Session or Collection for *path*, collection auto-detected.

    *shard_processes* selects the process-per-shard engine for
    collections (ignored for single warehouses); on a single-core host
    it degrades back to the thread pool — see
    :func:`~repro.serve.collection.connect_collection`.
    *replication_factor* applies in process mode only.
    """
    if Collection.is_collection(path):
        if shard_processes is not None:
            return connect_collection(
                path,
                mode="process",
                shard_processes=shard_processes,
                replication_factor=replication_factor,
            )
        return connect_collection(path, workers=workers)
    from repro.api import connect

    return connect(path)


def run_server(
    path: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int | None = None,
    shard_processes: int | None = None,
    replication_factor: int = 1,
    queue_depth: int = 16,
    default_deadline: float = 30.0,
    idle_timeout: float = 30.0,
    drain_grace: float = 10.0,
    quiet: bool = False,
) -> int:
    """Blocking entry point behind ``repro serve`` (see module docs).

    Opens the warehouse (or collection) at *path*, serves until SIGTERM
    or SIGINT, drains gracefully, closes the store, returns 0.
    ``shard_processes=N`` serves a collection with N worker processes
    behind the consistent-hash ring instead of the in-process pool;
    ``replication_factor=R`` keeps every document on R of them.
    """
    target = _open_target(
        path,
        workers=workers,
        shard_processes=shard_processes,
        replication_factor=replication_factor,
    )
    app = Application(target, own_target=True)
    try:
        server = HTTPServer(
            app,
            host=host,
            port=port,
            workers=workers,
            queue_depth=queue_depth,
            default_deadline=default_deadline,
            idle_timeout=idle_timeout,
            drain_grace=drain_grace,
        )
    except BaseException:
        app.close()
        raise

    async def _main() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.begin_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix loops: Ctrl-C still raises KeyboardInterrupt
        if not quiet:
            kind = "collection" if app.is_collection else "warehouse"
            print(
                f"serving {kind} {path} at http://{host}:{server.port} "
                "(SIGTERM drains gracefully)",
                flush=True,
            )
        await server.wait_drained()

    asyncio.run(_main())
    return 0


class ServerThread:
    """An :class:`HTTPServer` on a private event loop in a daemon thread.

    The in-process harness tests and E15 use: pass an open Session or
    Collection (not closed on exit — the caller owns it) or a path
    (opened and closed by the server), enter the context manager, talk
    to ``http://127.0.0.1:{port}``, and :meth:`stop` to drain::

        with repro.connect(path) as session:
            with ServerThread(session, queue_depth=4) as handle:
                requests_go_to(handle.url)
    """

    def __init__(self, target, *, shard_processes: int | None = None, **server_kwargs) -> None:
        if isinstance(target, (str, Path)):
            self._path = Path(target)
            self._app = None
        else:
            self._path = None
            self._app = Application(target)
        self._shard_processes = shard_processes
        self._kwargs = server_kwargs
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.server: HTTPServer | None = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.server.port}"

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(30):  # pragma: no cover - hang guard
            raise WarehouseError("HTTP server failed to start in 30s")
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surfaced to the starting thread
            self._error = exc
            self._started.set()

    async def _amain(self) -> None:
        app = self._app
        if app is None:
            app = Application(
                _open_target(self._path, shard_processes=self._shard_processes),
                own_target=True,
            )
        self.server = HTTPServer(app, **self._kwargs)
        await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._started.set()
        await self.server.wait_drained()

    def stop(self, timeout: float = 30.0) -> None:
        """Drain the server and join the thread; idempotent."""
        loop, server = self._loop, self.server
        if loop is not None and server is not None:
            try:
                loop.call_soon_threadsafe(server.begin_drain)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
