"""A bounded worker pool shared by a collection's shards.

The serving layer's unit of parallelism: a :class:`SessionPool` wraps a
:class:`~concurrent.futures.ThreadPoolExecutor` with a hard worker
bound, submission accounting (how many tasks are in flight, how many
ever ran) and an idempotent shutdown.  One pool serves *all* shards of
a :class:`~repro.serve.collection.Collection`, so a collection of a
hundred documents still runs at most ``workers`` concurrent shard
queries — fan-out is bounded by the pool, not by the shard count.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from time import perf_counter

from repro.errors import WarehouseError

__all__ = ["SessionPool", "default_workers"]


def default_workers() -> int:
    """The default pool width: the machine's cores, clamped to [2, 8].

    Reader work is CPU-bound Python, so very wide pools only add GIL
    contention; very narrow ones serialize multi-shard fan-out.
    """
    return max(2, min(8, os.cpu_count() or 2))


class SessionPool:
    """Bounded worker threads executing shard work for a collection.

    Parameters
    ----------
    workers:
        Maximum concurrent worker threads (default
        :func:`default_workers`).
    observability:
        An :class:`~repro.obs.Observability` panel, or None.  When its
        metrics are enabled, every submitted task feeds the
        ``serve.queue_wait_seconds`` (submission to worker pickup) and
        ``serve.execute_seconds`` (task body) histograms.

    The pool is thread-safe; tasks may be submitted from any thread
    until :meth:`shutdown`.  Worker threads are daemonic-by-executor
    semantics: :meth:`shutdown` waits for in-flight work.
    """

    def __init__(self, workers: int | None = None, observability=None) -> None:
        if workers is None:
            workers = default_workers()
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise WarehouseError(f"workers must be an int >= 1, got {workers!r}")
        self._workers = workers
        self._obs = observability
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._active = 0
        self._submitted = 0
        self._closed = False

    @property
    def workers(self) -> int:
        """The maximum number of concurrent worker threads."""
        return self._workers

    @property
    def observability(self):
        """The attached :class:`~repro.obs.Observability` panel (or None)."""
        return self._obs

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)`` on a worker; returns a Future."""
        obs = self._obs
        if obs is not None and obs.metrics.enabled:
            registry = obs.metrics
            inner, submitted = fn, perf_counter()

            def fn(*args, **kwargs):  # noqa: F811 — instrumented shim
                started = perf_counter()
                registry.observe("serve.queue_wait_seconds", started - submitted)
                try:
                    return inner(*args, **kwargs)
                finally:
                    registry.observe(
                        "serve.execute_seconds", perf_counter() - started
                    )

        with self._lock:
            if self._closed:
                raise WarehouseError("session pool is shut down")
            self._active += 1
            self._submitted += 1
        try:
            future = self._executor.submit(fn, *args, **kwargs)
        except BaseException as exc:
            with self._lock:
                self._active -= 1
                closed = self._closed
            if closed and isinstance(exc, RuntimeError):
                # Lost a race with shutdown(): the closed check above
                # passed, then the executor shut down before our
                # submit.  Same contract as losing the race earlier.
                raise WarehouseError("session pool is shut down") from exc
            raise
        future.add_done_callback(self._task_done)
        return future

    def _task_done(self, _future: Future) -> None:
        with self._lock:
            self._active -= 1

    def stats(self) -> dict:
        """Pool accounting: worker bound, in-flight and lifetime tasks."""
        with self._lock:
            return {
                "workers": self._workers,
                "active_tasks": self._active,
                "submitted_tasks": self._submitted,
                "closed": self._closed,
            }

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (by default) wait for what's running;
        idempotent."""
        with self._lock:
            if self._closed:
                already = True
            else:
                self._closed = True
                already = False
        if not already:
            self._executor.shutdown(wait=wait)

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        info = self.stats()
        state = "closed" if info["closed"] else f"{info['active_tasks']} active"
        return f"SessionPool({info['workers']} workers, {state})"
