"""A bounded worker pool shared by a collection's shards.

The serving layer's unit of parallelism: a :class:`SessionPool` runs
its own worker threads over a shared task queue with a hard worker
bound, submission accounting (how many tasks are in flight, how many
ever ran) and an idempotent, *hang-proof* shutdown.  One pool serves
*all* shards of a :class:`~repro.serve.collection.Collection`, so a
collection of a hundred documents still runs at most ``workers``
concurrent shard queries — fan-out is bounded by the pool, not by the
shard count.

The pool deliberately does not use
:class:`~concurrent.futures.ThreadPoolExecutor`: executor threads are
non-daemon and joined by an atexit hook, so one shard task wedged
inside a document walk would hang interpreter exit forever — exactly
the failure mode :class:`~repro.serve.http.server.ServerThread`
teardown paths used to hit.  Here the workers are daemon threads,
:meth:`shutdown` joins them with a deadline, and a straggler is
*logged* (``repro.serve`` logger) and abandoned instead of wedging the
process.
"""

from __future__ import annotations

import logging
import os
import queue
import threading
from concurrent.futures import Future
from time import monotonic, perf_counter

from repro.errors import WarehouseError

__all__ = ["SessionPool", "default_workers"]

_logger = logging.getLogger("repro.serve")

#: The sentinel a worker thread exits on (re-queued so one sentinel per
#: worker suffices no matter which worker dequeues it first).
_SHUTDOWN = object()


def default_workers() -> int:
    """The default pool width: the machine's cores, clamped to [2, 8].

    Reader work is CPU-bound Python, so very wide pools only add GIL
    contention; very narrow ones serialize multi-shard fan-out.
    """
    return max(2, min(8, os.cpu_count() or 2))


class SessionPool:
    """Bounded worker threads executing shard work for a collection.

    Parameters
    ----------
    workers:
        Maximum concurrent worker threads (default
        :func:`default_workers`).
    observability:
        An :class:`~repro.obs.Observability` panel, or None.  When its
        metrics are enabled, every submitted task feeds the
        ``serve.queue_wait_seconds`` (submission to worker pickup) and
        ``serve.execute_seconds`` (task body) histograms.

    The pool is thread-safe; tasks may be submitted from any thread
    until :meth:`shutdown`.  Futures honour
    :meth:`~concurrent.futures.Future.cancel` for tasks a worker has
    not picked up yet.
    """

    def __init__(self, workers: int | None = None, observability=None) -> None:
        if workers is None:
            workers = default_workers()
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise WarehouseError(f"workers must be an int >= 1, got {workers!r}")
        self._workers = workers
        self._obs = observability
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._active = 0
        self._submitted = 0
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def workers(self) -> int:
        """The maximum number of concurrent worker threads."""
        return self._workers

    @property
    def observability(self):
        """The attached :class:`~repro.obs.Observability` panel (or None)."""
        return self._obs

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                # Pass the pill on: one per worker is queued, but any
                # worker may dequeue any of them.
                self._queue.put(_SHUTDOWN)
                return
            future, fn, args, kwargs = item
            if not future.set_running_or_notify_cancel():
                with self._lock:
                    self._active -= 1
                continue
            try:
                result = fn(*args, **kwargs)
            except BaseException as exc:
                future.set_exception(exc)
            else:
                future.set_result(result)
            finally:
                with self._lock:
                    self._active -= 1

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)`` on a worker; returns a Future."""
        obs = self._obs
        if obs is not None and obs.metrics.enabled:
            registry = obs.metrics
            inner, submitted = fn, perf_counter()

            def fn(*args, **kwargs):  # noqa: F811 — instrumented shim
                started = perf_counter()
                registry.observe("serve.queue_wait_seconds", started - submitted)
                try:
                    return inner(*args, **kwargs)
                finally:
                    registry.observe(
                        "serve.execute_seconds", perf_counter() - started
                    )

        future: Future = Future()
        with self._lock:
            if self._closed:
                raise WarehouseError("session pool is shut down")
            self._active += 1
            self._submitted += 1
            # Enqueue under the lock: every accepted task is queued
            # *before* shutdown's sentinel, so no future can be
            # stranded behind the poison pill.
            self._queue.put((future, fn, args, kwargs))
        return future

    def stats(self) -> dict:
        """Pool accounting: worker bound, in-flight and lifetime tasks."""
        with self._lock:
            return {
                "workers": self._workers,
                "active_tasks": self._active,
                "submitted_tasks": self._submitted,
                "closed": self._closed,
            }

    def shutdown(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work and (by default) join the workers.

        Joining is bounded by *timeout* seconds across all workers: a
        thread still busy past the deadline is logged as a straggler
        and abandoned (the threads are daemonic, so it can never hang
        interpreter exit).  Idempotent.
        """
        with self._lock:
            already = self._closed
            if not already:
                self._closed = True
                self._queue.put(_SHUTDOWN)
        if not wait:
            return
        deadline = monotonic() + timeout
        stragglers = []
        for thread in self._threads:
            thread.join(max(0.0, deadline - monotonic()))
            if thread.is_alive():
                stragglers.append(thread.name)
        if stragglers:
            _logger.warning(
                "session pool shutdown abandoned %d straggler worker(s) "
                "after %.1fs: %s (daemon threads; they cannot block exit)",
                len(stragglers),
                timeout,
                ", ".join(stragglers),
            )

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        info = self.stats()
        state = "closed" if info["closed"] else f"{info['active_tasks']} active"
        return f"SessionPool({info['workers']} workers, {state})"
