"""Retry, backoff and deadline budgets for cluster requests.

A worker death is *transient*: the monitor respawns the process and WAL
replay restores every acknowledged commit, typically well under a
second.  The right client-side behaviour is therefore to retry — but
politely.  This module centralises the policy:

* **classification** — only errors that declare themselves safe to
  retry are retried.  The contract is the existing ``retryable``
  attribute on the exception (``ShardUnavailableError.retryable is
  True``); everything else propagates immediately, because retrying a
  deterministic failure (bad pattern, unknown key) just triples its
  latency.
* **decorrelated-jitter backoff** — each sleep is drawn uniformly from
  ``[base, previous * multiplier]`` and capped, the AWS "decorrelated
  jitter" scheme: concurrent retriers spread out instead of stampeding
  a worker that is busy replaying its WAL.
* **deadline budgets** — the caller's deadline is a hard wall.  A
  retry is attempted only when its backoff sleep still fits inside the
  budget; when it does not, the *original* error is re-raised, so the
  caller sees the real failure, not a synthetic timeout.

The clock, sleeper and RNG are injectable, which keeps the policy's
behaviour deterministic under test (and lets the chaos suite replay
exact schedules).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.errors import WarehouseError

__all__ = ["DEFAULT_POLICY", "RetryPolicy", "call_with_retry", "is_retryable"]


def is_retryable(exc: BaseException) -> bool:
    """The error classification contract: an exception opts into retry
    by declaring ``retryable = True`` (as ``ShardUnavailableError``
    does); everything else is treated as deterministic."""
    return bool(getattr(exc, "retryable", False))


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff shape: decorrelated jitter between *base_delay* and
    *max_delay*, at most *max_attempts* tries (None = deadline-bound
    only)."""

    base_delay: float = 0.02
    max_delay: float = 1.0
    multiplier: float = 3.0
    max_attempts: int | None = None

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise WarehouseError(
                f"base_delay must be > 0, got {self.base_delay!r}"
            )
        if self.max_delay < self.base_delay:
            raise WarehouseError(
                f"max_delay {self.max_delay!r} < base_delay {self.base_delay!r}"
            )
        if self.multiplier < 1.0:
            raise WarehouseError(
                f"multiplier must be >= 1, got {self.multiplier!r}"
            )
        if self.max_attempts is not None and self.max_attempts < 1:
            raise WarehouseError(
                f"max_attempts must be >= 1 or None, got {self.max_attempts!r}"
            )

    def next_delay(self, previous: float | None, rng: random.Random) -> float:
        """The sleep before the next attempt, given the *previous* one."""
        ceiling = self.base_delay if previous is None else previous * self.multiplier
        ceiling = max(self.base_delay, min(self.max_delay, ceiling))
        return rng.uniform(self.base_delay, ceiling)


DEFAULT_POLICY = RetryPolicy()


def call_with_retry(
    fn,
    *,
    deadline: float | None = None,
    policy: RetryPolicy = DEFAULT_POLICY,
    classify=is_retryable,
    rng: random.Random | None = None,
    on_retry=None,
    clock=time.monotonic,
    sleep=time.sleep,
):
    """Call *fn* until it returns, the error is final, or the budget ends.

    *deadline* is an absolute *clock()* timestamp (``time.monotonic``
    by default).  *classify* decides retryability per exception;
    *on_retry(attempt, delay, exc)* observes each backoff (metrics
    hook).  On budget or attempt exhaustion the last real error is
    re-raised unchanged.
    """
    rng = rng if rng is not None else random.Random()
    attempt = 0
    delay: float | None = None
    while True:
        attempt += 1
        try:
            return fn()
        except BaseException as exc:
            if not classify(exc):
                raise
            if policy.max_attempts is not None and attempt >= policy.max_attempts:
                raise
            delay = policy.next_delay(delay, rng)
            if deadline is not None and clock() + delay >= deadline:
                raise
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            sleep(delay)
