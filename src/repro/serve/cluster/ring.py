"""Consistent-hash ring: document keys → worker names.

The supervisor routes every document key to exactly one worker.  A
plain ``hash(key) % N`` would reshuffle nearly every key when N
changes; the consistent-hash ring moves only ~K/N keys when a worker
joins or leaves, which is what keeps ring changes cheap migrations
instead of full reshards.

Each worker contributes ``replicas`` virtual points (SHA-1 of
``"name#i"``) on a 2^64 circle; a key routes to the first worker point
at or past its own hash.  SHA-1 keeps placement stable across
processes and runs — :func:`hash` is salted per process and would
reroute everything on restart.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

from repro.errors import WarehouseError

__all__ = ["HashRing"]


def _point(data: str) -> int:
    return int.from_bytes(hashlib.sha1(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """An immutable-per-operation consistent-hash ring over worker names.

    Not thread-safe by itself; the supervisor mutates it under its
    routing lock.
    """

    __slots__ = ("_replicas", "_nodes", "_points", "_owners")

    def __init__(self, nodes: tuple[str, ...] | list[str] = (), replicas: int = 64) -> None:
        if not isinstance(replicas, int) or replicas < 1:
            raise WarehouseError(f"replicas must be an int >= 1, got {replicas!r}")
        self._replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Add a worker's virtual points (idempotent-hostile: re-adding
        an existing node raises — a double-add hides a routing bug)."""
        if node in self._nodes:
            raise WarehouseError(f"ring already contains {node!r}")
        self._nodes.add(node)
        for i in range(self._replicas):
            point = _point(f"{node}#{i}")
            # SHA-1 collisions across 64-bit prefixes are effectively
            # impossible; keep the first owner if one ever happens so
            # add/remove stay symmetric.
            if point not in self._owners:
                self._owners[point] = node
                self._points.append(point)
        self._points.sort()

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise WarehouseError(f"ring does not contain {node!r}")
        self._nodes.discard(node)
        self._points = [p for p in self._points if self._owners[p] != node]
        self._owners = {p: o for p, o in self._owners.items() if o != node}

    def route(self, key: str) -> str:
        """The worker owning *key* (first point clockwise from its hash)."""
        return self.successors(key, 1)[0]

    def successors(self, key: str, n: int) -> list[str]:
        """The first *n* distinct workers clockwise from *key*'s hash.

        Element 0 is the primary (what :meth:`route` returns); the rest
        is the replica set.  Capped at the worker count — asking for
        more successors than workers returns them all, so a
        replication factor above the cluster size degrades gracefully
        instead of failing placement.
        """
        if not self._points:
            raise WarehouseError("cannot route on an empty ring")
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise WarehouseError(f"successor count must be an int >= 1, got {n!r}")
        wanted = min(n, len(self._nodes))
        start = bisect_right(self._points, _point(key))
        owners: list[str] = []
        for step in range(len(self._points)):
            point = self._points[(start + step) % len(self._points)]
            owner = self._owners[point]
            if owner not in owners:
                owners.append(owner)
                if len(owners) == wanted:
                    break
        return owners

    def assignment(self, keys) -> dict[str, str]:
        """Route many keys at once: ``{key: worker name}``."""
        return {key: self.route(key) for key in keys}

    def placement(self, keys, n: int) -> dict[str, list[str]]:
        """Replica placement for many keys: ``{key: [primary, *replicas]}``."""
        return {key: self.successors(key, n) for key in keys}

    def __repr__(self) -> str:
        return f"HashRing({sorted(self._nodes)!r}, replicas={self._replicas})"
