"""Length-prefixed binary frame protocol between supervisor and workers.

One frame is one request or one response::

    u32  frame length (bytes past this field)
    u8   frame format version (:data:`FRAME_FORMAT_VERSION`; a peer
         speaking another revision gets a clean :class:`WireError`,
         not a decode crash)
    u8   verb (:class:`Verb`)
    u64  request id (echoed by the response; lets a receiver discard a
         stale response after a timed-out request)
    u32  CRC-32 of the version, verb, request-id and payload bytes —
         the whole frame past the length prefix, so a bit flip in any
         header field is detected, not just payload damage
    ...  payload (see below)

The payload is self-describing stdlib data, not pickle: a JSON document
for the structured part plus a struct-framed blob table for binary
values (snapshot bytes, tree payloads).  ``bytes`` values anywhere in
the object tree are replaced by ``{"__blob__": i}`` references into the
table; real dicts that happen to use a reserved key are escaped as
``{"__esc__": {...}}``.  Layout after the header::

    u32  JSON length, then the UTF-8 JSON bytes
    u32  blob count, then per blob: u32 length + raw bytes

Frames travel over either a :class:`multiprocessing.Pipe` connection
(:class:`PipeTransport` — the connection's own message framing carries
whole frames, the length prefix is kept for uniformity) or a stream
socket (:class:`SocketTransport` — the length prefix *is* the framing).
A checksum mismatch, a truncated frame, a version mismatch or an
unknown verb raises :class:`WireError`; EOF on the underlying channel
raises plain :class:`EOFError` so the supervisor can tell "peer died"
from "peer sent garbage" — the two failure families drive different
recovery (respawn vs retry on the same pipe).
"""

from __future__ import annotations

import json
import struct
import zlib
from enum import IntEnum

from repro.errors import WarehouseError

__all__ = [
    "FRAME_FORMAT_VERSION",
    "PipeTransport",
    "SocketTransport",
    "Verb",
    "WireError",
    "decode_frame",
    "encode_frame",
]

#: Bumped whenever the header or payload layout changes; a decoder
#: rejects other revisions instead of misreading their bytes.
FRAME_FORMAT_VERSION = 2


class WireError(WarehouseError):
    """A malformed frame: bad checksum, truncation, version or verb."""


class Verb(IntEnum):
    """Frame kinds.  Requests flow supervisor → worker; every request
    is answered by exactly one OK or ERR frame with the same id."""

    # requests
    QUERY = 1
    UPDATE = 2
    CREATE = 3
    STATS = 4
    HEALTH = 5
    DRAIN = 6
    ASSIGN = 7
    RELEASE = 8
    SYNC_PULL = 9
    SYNC_PUSH = 10
    # responses / lifecycle
    READY = 16
    OK = 17
    ERR = 18


_HEADER = struct.Struct("<BBQ")  # format version, verb, request id
_CRC = struct.Struct("<I")
_LENGTH = struct.Struct("<I")
_BLOB_KEY = "__blob__"
_ESCAPE_KEY = "__esc__"


def _to_wire(value, blobs: list[bytes]):
    """*value* as JSON-encodable data; bytes move into the blob table."""
    if isinstance(value, bool) or value is None or isinstance(value, (str, int, float)):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        blobs.append(bytes(value))
        return {_BLOB_KEY: len(blobs) - 1}
    if isinstance(value, (list, tuple)):
        return [_to_wire(item, blobs) for item in value]
    if isinstance(value, dict):
        converted = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(
                    f"frame payload keys must be strings, got {key!r}"
                )
            converted[key] = _to_wire(item, blobs)
        if _BLOB_KEY in converted or _ESCAPE_KEY in converted:
            return {_ESCAPE_KEY: converted}
        return converted
    raise WireError(
        f"frame payload value of type {type(value).__name__} is not encodable"
    )


def _from_wire(value, blobs: list[bytes]):
    if isinstance(value, list):
        return [_from_wire(item, blobs) for item in value]
    if isinstance(value, dict):
        if len(value) == 1:
            if _BLOB_KEY in value:
                index = value[_BLOB_KEY]
                if not isinstance(index, int) or not 0 <= index < len(blobs):
                    raise WireError(f"frame blob reference {index!r} out of range")
                return blobs[index]
            if _ESCAPE_KEY in value:
                inner = value[_ESCAPE_KEY]
                if not isinstance(inner, dict):
                    raise WireError("frame escape marker must wrap an object")
                return {k: _from_wire(v, blobs) for k, v in inner.items()}
        return {k: _from_wire(v, blobs) for k, v in value.items()}
    return value


def _pack_payload(payload: object) -> bytes:
    blobs: list[bytes] = []
    try:
        text = json.dumps(
            _to_wire(payload, blobs),
            separators=(",", ":"),
            allow_nan=False,
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireError(f"frame payload is not JSON-encodable: {exc}") from exc
    parts = [_LENGTH.pack(len(text)), text, _LENGTH.pack(len(blobs))]
    for blob in blobs:
        parts.append(_LENGTH.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def _unpack_payload(body: bytes) -> object:
    view = memoryview(body)
    offset = 0

    def take(n: int) -> memoryview:
        nonlocal offset
        if offset + n > len(view):
            raise WireError("frame payload truncated")
        chunk = view[offset : offset + n]
        offset += n
        return chunk

    (json_length,) = _LENGTH.unpack(take(_LENGTH.size))
    try:
        decoded = json.loads(bytes(take(json_length)).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"frame payload is not valid JSON: {exc}") from exc
    (blob_count,) = _LENGTH.unpack(take(_LENGTH.size))
    blobs: list[bytes] = []
    for _ in range(blob_count):
        (blob_length,) = _LENGTH.unpack(take(_LENGTH.size))
        blobs.append(bytes(take(blob_length)))
    if offset != len(view):
        raise WireError(
            f"frame payload has {len(view) - offset} trailing bytes"
        )
    return _from_wire(decoded, blobs)


def encode_frame(verb: Verb, request_id: int, payload: object) -> bytes:
    """One wire frame, length prefix included."""
    body = _pack_payload(payload)
    header = _HEADER.pack(FRAME_FORMAT_VERSION, int(verb), request_id)
    checksum = zlib.crc32(body, zlib.crc32(header))
    return b"".join(
        (
            _LENGTH.pack(_HEADER.size + _CRC.size + len(body)),
            header,
            _CRC.pack(checksum),
            body,
        )
    )


def decode_frame(frame: bytes) -> tuple[Verb, int, object]:
    """Decode one frame (length prefix included); verifies the checksum."""
    prefix = _LENGTH.size
    if len(frame) < prefix + _HEADER.size + _CRC.size:
        raise WireError(f"frame too short ({len(frame)} bytes)")
    (length,) = _LENGTH.unpack_from(frame)
    if length != len(frame) - prefix:
        raise WireError(
            f"frame length mismatch: prefix says {length}, got {len(frame) - prefix}"
        )
    version, verb_value, request_id = _HEADER.unpack_from(frame, prefix)
    if version != FRAME_FORMAT_VERSION:
        raise WireError(
            f"frame format version {version} != {FRAME_FORMAT_VERSION} "
            "(mismatched peer?)"
        )
    (checksum,) = _CRC.unpack_from(frame, prefix + _HEADER.size)
    body = frame[prefix + _HEADER.size + _CRC.size :]
    if zlib.crc32(body, zlib.crc32(frame[prefix : prefix + _HEADER.size])) != checksum:
        raise WireError("frame failed its checksum")
    try:
        verb = Verb(verb_value)
    except ValueError:
        raise WireError(f"unknown verb {verb_value}") from None
    return verb, request_id, _unpack_payload(body)


class PipeTransport:
    """Frames over a :class:`multiprocessing.connection.Connection`.

    The connection's message framing delivers whole frames; ``recv``
    honours an optional timeout via ``poll`` and raises
    :class:`TimeoutError` without consuming anything.
    """

    __slots__ = ("_conn",)

    def __init__(self, conn) -> None:
        self._conn = conn

    def send(self, verb: Verb, request_id: int, payload: object) -> None:
        self._conn.send_bytes(encode_frame(verb, request_id, payload))

    def recv_bytes(self, timeout: float | None = None) -> bytes:
        """The next raw frame; raises EOFError when the peer is gone and
        TimeoutError when *timeout* elapses first."""
        if timeout is not None and not self._conn.poll(timeout):
            raise TimeoutError("no frame within the timeout")
        return self._conn.recv_bytes()

    def recv(self, timeout: float | None = None) -> tuple[Verb, int, object]:
        return decode_frame(self.recv_bytes(timeout))

    def poll(self, timeout: float = 0.0) -> bool:
        return self._conn.poll(timeout)

    def close(self) -> None:
        self._conn.close()

    @property
    def closed(self) -> bool:
        return self._conn.closed


class SocketTransport:
    """Frames over a stream socket; the length prefix is the framing."""

    __slots__ = ("_sock",)

    def __init__(self, sock) -> None:
        self._sock = sock

    def send(self, verb: Verb, request_id: int, payload: object) -> None:
        self._sock.sendall(encode_frame(verb, request_id, payload))

    def recv(self, timeout: float | None = None) -> tuple[Verb, int, object]:
        self._sock.settimeout(timeout)
        prefix = self._read_exact(_LENGTH.size)
        (length,) = _LENGTH.unpack(prefix)
        return decode_frame(prefix + self._read_exact(length))

    def _read_exact(self, n: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < n:
            chunk = self._sock.recv(n - len(chunks))
            if not chunk:
                raise EOFError("socket closed mid-frame")
            chunks += chunk
        return bytes(chunks)

    def close(self) -> None:
        self._sock.close()
