"""Length-prefixed binary frame protocol between supervisor and workers.

One frame is one request or one response::

    u32  frame length (bytes past this field)
    u8   verb (:class:`Verb`)
    u64  request id (echoed by the response; lets a receiver discard a
         stale response after a timed-out request)
    u32  CRC-32 of the payload bytes
    ...  payload: pickled plain data (dicts of strings/numbers/lists)

Frames travel over either a :class:`multiprocessing.Pipe` connection
(:class:`PipeTransport` — the connection's own message framing carries
whole frames, the length prefix is kept for uniformity) or a stream
socket (:class:`SocketTransport` — the length prefix *is* the framing).
A checksum mismatch, a truncated frame or an unknown verb raises
:class:`WireError`; EOF on the underlying channel raises plain
:class:`EOFError` so the supervisor can tell "peer died" from "peer
sent garbage".

Payloads are pickled, but only ever plain data built by this package on
both ends of a pipe this process created — the protocol is an internal
IPC surface, not a network-facing one (the HTTP front end stays the
only outside door).
"""

from __future__ import annotations

import pickle
import struct
import zlib
from enum import IntEnum

from repro.errors import WarehouseError

__all__ = [
    "PipeTransport",
    "SocketTransport",
    "Verb",
    "WireError",
    "decode_frame",
    "encode_frame",
]


class WireError(WarehouseError):
    """A malformed frame: bad checksum, truncation, unknown verb."""


class Verb(IntEnum):
    """Frame kinds.  Requests flow supervisor → worker; every request
    is answered by exactly one OK or ERR frame with the same id."""

    # requests
    QUERY = 1
    UPDATE = 2
    CREATE = 3
    STATS = 4
    HEALTH = 5
    DRAIN = 6
    ASSIGN = 7
    RELEASE = 8
    # responses / lifecycle
    READY = 16
    OK = 17
    ERR = 18


_HEADER = struct.Struct("<BQI")  # verb, request id, payload crc32
_LENGTH = struct.Struct("<I")


def encode_frame(verb: Verb, request_id: int, payload: object) -> bytes:
    """One wire frame, length prefix included."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(int(verb), request_id, zlib.crc32(body))
    return _LENGTH.pack(len(header) + len(body)) + header + body


def decode_frame(frame: bytes) -> tuple[Verb, int, object]:
    """Decode one frame (length prefix included); verifies the checksum."""
    prefix = _LENGTH.size
    if len(frame) < prefix + _HEADER.size:
        raise WireError(f"frame too short ({len(frame)} bytes)")
    (length,) = _LENGTH.unpack_from(frame)
    if length != len(frame) - prefix:
        raise WireError(
            f"frame length mismatch: prefix says {length}, got {len(frame) - prefix}"
        )
    verb_value, request_id, checksum = _HEADER.unpack_from(frame, prefix)
    body = frame[prefix + _HEADER.size :]
    if zlib.crc32(body) != checksum:
        raise WireError("frame payload failed its checksum")
    try:
        verb = Verb(verb_value)
    except ValueError:
        raise WireError(f"unknown verb {verb_value}") from None
    try:
        payload = pickle.loads(body)
    except Exception as exc:  # pickle raises a zoo of types on bad bytes
        raise WireError(f"frame payload failed to unpickle: {exc}") from exc
    return verb, request_id, payload


class PipeTransport:
    """Frames over a :class:`multiprocessing.connection.Connection`.

    The connection's message framing delivers whole frames; ``recv``
    honours an optional timeout via ``poll`` and raises
    :class:`TimeoutError` without consuming anything.
    """

    __slots__ = ("_conn",)

    def __init__(self, conn) -> None:
        self._conn = conn

    def send(self, verb: Verb, request_id: int, payload: object) -> None:
        self._conn.send_bytes(encode_frame(verb, request_id, payload))

    def recv(self, timeout: float | None = None) -> tuple[Verb, int, object]:
        """The next frame; raises EOFError when the peer is gone and
        TimeoutError when *timeout* elapses first."""
        if timeout is not None and not self._conn.poll(timeout):
            raise TimeoutError("no frame within the timeout")
        return decode_frame(self._conn.recv_bytes())

    def poll(self, timeout: float = 0.0) -> bool:
        return self._conn.poll(timeout)

    def close(self) -> None:
        self._conn.close()

    @property
    def closed(self) -> bool:
        return self._conn.closed


class SocketTransport:
    """Frames over a stream socket; the length prefix is the framing."""

    __slots__ = ("_sock",)

    def __init__(self, sock) -> None:
        self._sock = sock

    def send(self, verb: Verb, request_id: int, payload: object) -> None:
        self._sock.sendall(encode_frame(verb, request_id, payload))

    def recv(self, timeout: float | None = None) -> tuple[Verb, int, object]:
        self._sock.settimeout(timeout)
        prefix = self._read_exact(_LENGTH.size)
        (length,) = _LENGTH.unpack(prefix)
        return decode_frame(prefix + self._read_exact(length))

    def _read_exact(self, n: int) -> bytes:
        chunks = bytearray()
        while len(chunks) < n:
            chunk = self._sock.recv(n - len(chunks))
            if not chunk:
                raise EOFError("socket closed mid-frame")
            chunks += chunk
        return bytes(chunks)

    def close(self) -> None:
        self._sock.close()
