"""Deterministic chaos harness for the process-per-shard cluster.

Fault-tolerance claims are only as good as the faults they were tested
against, and ad-hoc ``kill``-from-a-shell tests neither cover the
interesting windows nor reproduce.  This module makes fault injection a
*seeded plan*: :class:`FaultPlan` expands a seed into a fixed sequence
of :class:`Fault` events, and :class:`ChaosMonkey` applies them to a
live :class:`~repro.serve.cluster.ProcessCollection` — one per call
(:meth:`ChaosMonkey.apply_next`) for step-debuggable tests, or on a
timer (:meth:`ChaosMonkey.start`) for sustained-load benchmarks.  The
same seed replays the same schedule.

Fault kinds:

``kill``
    SIGKILL the victim worker process — the supervisor sees EOF on the
    pipe, in-flight requests fail retryably, the monitor respawns.
``drop_pipe``
    Close the supervisor side of the victim's pipe: both ends observe
    a clean EOF with the process still healthy — the "half-open
    channel" failure, distinct from a process death.
``corrupt_frame``
    Flip one random bit in the next response frame received from the
    victim, exercising the :class:`~repro.serve.cluster.wire.WireError`
    failure family (damage ≠ death: the worker stays up and the next
    request must succeed without a respawn).
``slow``
    Delay the next response from the victim by ``delay_s`` seconds —
    a slow worker, which only an attempt timeout can distinguish from
    a dead one.

Worker UPDATE-window kills (``before_commit`` / ``after_commit``) stay
where PR 8 put them — the ``fault=`` argument of
``ProcessCollection.update`` — because they must fire at an exact
point *inside* the commit, which no external scheduler can hit;
:class:`FaultPlan` covers everything that happens *to the channel and
the process*, the update faults cover the commit window itself.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.errors import WarehouseError
from repro.serve.cluster.wire import decode_frame

__all__ = [
    "ChaosMonkey",
    "ChaosTransport",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "kill_worker",
]

FAULT_KINDS = ("kill", "drop_pipe", "corrupt_frame", "slow")


@dataclass(frozen=True)
class Fault:
    """One planned fault: *victim* indexes the sorted list of live
    workers at apply time (modulo its length, so plans survive ring
    changes)."""

    kind: str
    victim: int
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise WarehouseError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )


class FaultPlan:
    """A seeded, finite fault schedule; the same seed gives the same
    plan on every run and machine."""

    def __init__(
        self,
        seed: int,
        *,
        length: int = 8,
        kinds: tuple[str, ...] = FAULT_KINDS,
        slow_s: float = 0.05,
    ) -> None:
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise WarehouseError(f"unknown fault kind {kind!r}")
        self.seed = seed
        rng = random.Random(seed)
        self.faults: tuple[Fault, ...] = tuple(
            Fault(
                kind=rng.choice(list(kinds)),
                victim=rng.randrange(1 << 16),
                delay_s=slow_s,
            )
            for _ in range(length)
        )

    @classmethod
    def kills(cls, seed: int, *, length: int = 8) -> "FaultPlan":
        """A kill-only plan — the E17 availability schedule."""
        return cls(seed, length=length, kinds=("kill",))

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __getitem__(self, index: int) -> Fault:
        return self.faults[index]

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, {len(self.faults)} faults)"


class ChaosTransport:
    """A transport wrapper that can damage or delay the next response.

    Wraps the supervisor side of a worker pipe; ``arm_corrupt()`` makes
    the next received frame arrive with one bit flipped (decode raises
    ``WireError``), ``arm_delay(s)`` makes it arrive *s* seconds late.
    Unarmed, it is a transparent proxy.
    """

    def __init__(self, inner, rng: random.Random) -> None:
        self._inner = inner
        self._rng = rng
        self._lock = threading.Lock()
        self._corrupt_next = 0
        self._delay_next = 0.0

    def arm_corrupt(self) -> None:
        with self._lock:
            self._corrupt_next += 1

    def arm_delay(self, seconds: float) -> None:
        with self._lock:
            self._delay_next = max(self._delay_next, float(seconds))

    def send(self, verb, request_id, payload) -> None:
        self._inner.send(verb, request_id, payload)

    def recv(self, timeout: float | None = None):
        with self._lock:
            delay, self._delay_next = self._delay_next, 0.0
            corrupt = self._corrupt_next > 0
            if corrupt:
                self._corrupt_next -= 1
        if delay:
            time.sleep(delay)
            if timeout is not None:
                timeout = max(0.0, timeout - delay)
        raw = self._inner.recv_bytes(timeout)
        if corrupt:
            flipped = bytearray(raw)
            bit = self._rng.randrange(len(flipped) * 8)
            flipped[bit // 8] ^= 1 << (bit % 8)
            raw = bytes(flipped)
        return decode_frame(raw)

    def recv_bytes(self, timeout: float | None = None) -> bytes:
        return self._inner.recv_bytes(timeout)

    def poll(self, timeout: float = 0.0) -> bool:
        return self._inner.poll(timeout)

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed


def kill_worker(collection, name: str) -> None:
    """SIGKILL worker *name* of a :class:`ProcessCollection` — the
    external-killer path (the in-commit windows are ``fault=`` on
    ``update``)."""
    handle = collection._handles.get(name)
    if handle is None:
        raise WarehouseError(f"no worker {name!r}")
    process = handle.process
    if process is not None and process.is_alive():
        process.kill()


class ChaosMonkey:
    """Applies a :class:`FaultPlan` to a live collection.

    ``apply_next()`` applies exactly one fault and returns it (None
    when the plan is exhausted); ``start(interval)`` runs the plan on
    a background thread, one fault per interval.  With
    ``wait_healthy=True`` (the default) a fault only fires while every
    worker is alive and no replica is stale — the "kill one worker per
    interval" schedule, never two concurrent failures, which is the
    regime an R=2 cluster is expected to survive with zero errors.
    """

    def __init__(self, collection, plan: FaultPlan, *, wait_healthy: bool = True) -> None:
        self._collection = collection
        self._plan = list(plan)
        self._next = 0
        self._rng = random.Random(plan.seed ^ 0x5EED)
        self._wait_healthy = wait_healthy
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.applied: list[tuple[Fault, str]] = []

    # -- plan execution ------------------------------------------------

    def _healthy(self) -> bool:
        collection = self._collection
        if any(
            not info["alive"] for info in collection.workers().values()
        ):
            return False
        return not collection._stale_pairs()

    def _victim(self, fault: Fault):
        handles = self._collection._handles
        names = sorted(
            name
            for name, handle in handles.items()
            if handle.alive and not handle.draining
        )
        if not names:
            return None, None
        name = names[fault.victim % len(names)]
        return name, handles[name]

    def apply_next(self) -> Fault | None:
        """Apply the next planned fault; None when the plan is done."""
        if self._next >= len(self._plan):
            return None
        fault = self._plan[self._next]
        name, handle = self._victim(fault)
        if handle is None:
            return None  # nothing alive to hurt; keep the fault queued
        self._next += 1
        if fault.kind == "kill":
            kill_worker(self._collection, name)
        elif fault.kind == "drop_pipe":
            with handle.lock:
                if handle.transport is not None:
                    handle.transport.close()
                handle.alive = False
        elif fault.kind in ("corrupt_frame", "slow"):
            with handle.lock:
                transport = handle.transport
                if transport is None:
                    return self.apply_next()
                if not isinstance(transport, ChaosTransport):
                    transport = ChaosTransport(transport, self._rng)
                    handle.transport = transport
                if fault.kind == "corrupt_frame":
                    transport.arm_corrupt()
                else:
                    transport.arm_delay(fault.delay_s)
        self.applied.append((fault, name))
        return fault

    # -- background schedule -------------------------------------------

    def start(self, interval: float = 1.0) -> None:
        if self._thread is not None:
            raise WarehouseError("chaos monkey already started")
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(interval):
                if self._next >= len(self._plan):
                    return
                if self._wait_healthy and not self._healthy():
                    continue  # let the respawn/resync finish first
                try:
                    self.apply_next()
                except Exception:
                    continue  # a racing respawn swapped state under us

        self._thread = threading.Thread(
            target=run, name="repro-chaos-monkey", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(5.0)
            self._thread = None

    def __repr__(self) -> str:
        return (
            f"ChaosMonkey({self._next}/{len(self._plan)} faults applied)"
        )
