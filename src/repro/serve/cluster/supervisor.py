"""Supervisor: stateless router over stateful worker processes.

:class:`ProcessCollection` is the process-per-shard sibling of
:class:`~repro.serve.collection.Collection`: the same directory layout,
the same key-routed updates and fan-out queries, but every shard lives
in a worker *process* (:mod:`repro.serve.cluster.worker`) so reader
throughput scales past the GIL.  The supervisor holds no document
state at all:

* a :class:`~repro.serve.cluster.ring.HashRing` routes document keys
  to workers; ring changes (:meth:`add_worker` / :meth:`remove_worker`)
  migrate only the keys whose owner changed, via RELEASE on the old
  worker (which folds the shard's WAL into a final snapshot — the
  pinned-snapshot handoff) followed by ASSIGN on the new one, all
  under the routing lock so no request can observe a half-moved key;
* a monitor thread watches worker liveness; a dead worker is respawned
  with the same key set and recovers from its own WAL inside
  ``Warehouse.open`` before answering READY.  An in-flight request on
  the dying pipe fails fast with the retryable
  :class:`~repro.errors.ShardUnavailableError` — acknowledged commits
  are already durable in that shard's WAL, so the retry contract is
  safe;
* requests are length-prefixed frames (:mod:`.wire`) over a
  per-worker ``multiprocessing.Pipe``, serialized per worker by a
  handle lock and matched to responses by request id.

Workers are started with the ``spawn`` method: the supervisor runs
inside threaded serving processes, and forking a multithreaded parent
inherits locks in undefined states.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from time import perf_counter

import repro.errors as errors_module
from repro.core.update import UpdateReport
from repro.errors import QueryError, ShardUnavailableError, WarehouseError
from repro.serve.cluster.ring import HashRing
from repro.serve.cluster.wire import PipeTransport, Verb, WireError
from repro.serve.cluster.worker import worker_main
from repro.warehouse.warehouse import (
    USE_DEFAULT_OBSERVABILITY,
    _resolve_observability,
)
from repro.xmlio.parse import plain_from_string
from repro.xmlio.serialize import fuzzy_to_string

__all__ = ["ClusterResultSet", "ClusterRow", "ProcessCollection"]

#: Seconds a freshly spawned worker gets to import, recover its shards
#: and answer READY (spawn pays interpreter start + module imports).
_SPAWN_TIMEOUT = 120.0
#: Seconds a DRAIN/close is given before escalating to terminate/kill.
_DRAIN_TIMEOUT = 10.0
#: Liveness poll interval of the monitor thread.
_MONITOR_INTERVAL = 0.05


def _reconstruct_error(payload: dict) -> Exception:
    """An ERR payload back into the closest exception class."""
    family = payload.get("family")
    message = payload.get("message", "worker error")
    cls = getattr(errors_module, str(family), None)
    if isinstance(cls, type) and issubclass(cls, errors_module.ReproError):
        try:
            return cls(message)
        except TypeError:
            pass  # subclasses with richer signatures fall through
    return WarehouseError(f"{family}: {message}")


class ClusterRow:
    """One merged query row from a worker process.

    The same reading surface as
    :class:`~repro.serve.collection.ShardRow` (``document``,
    ``probability``, ``tree``, ``bindings()``): the answer tree crossed
    the pipe as compact XML and is parsed lazily on first access.
    """

    __slots__ = ("document", "probability", "_bindings", "_tree_xml", "_tree")

    def __init__(self, document: str, payload: dict) -> None:
        self.document = document
        self.probability = payload["probability"]
        self._bindings = payload["bindings"]
        self._tree_xml = payload["tree_xml"]
        self._tree = None

    @property
    def tree(self):
        if self._tree is None:
            self._tree = plain_from_string(self._tree_xml)
        return self._tree

    def bindings(self) -> dict[str, str | None]:
        return dict(self._bindings)

    def __repr__(self) -> str:
        return f"ClusterRow({self.document!r}, p={self.probability:.4f})"


class ClusterResultSet:
    """Lazy fan-out query over a process collection's workers.

    Mirrors :class:`~repro.serve.collection.CollectionResultSet`:
    immutable, ``limit(n)`` returns a new set, iteration yields rows in
    deterministic (shard key, row) order.  The limit is pushed to every
    worker (a shard contributes at most n rows) and capped again at the
    merge.
    """

    __slots__ = ("_collection", "_pattern", "_keys", "_limit")

    def __init__(self, collection, pattern: str, keys, limit=None) -> None:
        self._collection = collection
        self._pattern = pattern
        self._keys = keys
        self._limit = limit

    def limit(self, n: int) -> "ClusterResultSet":
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            raise QueryError(f"limit must be a non-negative int, got {n!r}")
        capped = n if self._limit is None else min(self._limit, n)
        return ClusterResultSet(self._collection, self._pattern, self._keys, capped)

    def __iter__(self):
        if self._limit == 0:
            return iter(())
        rows_by_key = self._collection._fanout_query(
            self._pattern, self._keys, self._limit
        )
        return self._merge(rows_by_key)

    def _merge(self, rows_by_key: dict[str, list[ClusterRow]]):
        emitted = 0
        for key in sorted(rows_by_key):
            for row in rows_by_key[key]:
                yield row
                emitted += 1
                if self._limit is not None and emitted >= self._limit:
                    return

    def all(self) -> list[ClusterRow]:
        return list(self)

    def first(self) -> ClusterRow | None:
        for row in self.limit(1):
            return row
        return None

    def count(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:
        limit = "" if self._limit is None else f", limit={self._limit}"
        return (
            f"ClusterResultSet({self._pattern!r}, "
            f"{len(self._keys)} shards{limit})"
        )


class _WorkerHandle:
    """One worker process plus its request channel and accounting."""

    __slots__ = (
        "name",
        "process",
        "transport",
        "lock",
        "keys",
        "respawns",
        "alive",
        "draining",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.process = None
        self.transport: PipeTransport | None = None
        # Serializes request/response pairs on the pipe; also what a
        # respawn holds while swapping in the new process.
        self.lock = threading.Lock()
        self.keys: set[str] = set()
        self.respawns = 0
        self.alive = False
        self.draining = False


class ProcessCollection:
    """N worker processes serving a collection directory as one store.

    Open through :func:`repro.serve.connect_collection` with
    ``mode="process"`` — the constructor expects an *existing*
    collection layout (the manifest and any shard directories).

    ``session_options`` must be plain data (ints/bools/None): they
    cross the spawn boundary.  ``fault_injection=True`` lets tests ask
    workers to SIGKILL themselves around a commit — never enable it in
    real serving.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        shard_processes: int,
        session_options: dict | None = None,
        observability=USE_DEFAULT_OBSERVABILITY,
        fault_injection: bool = False,
        replicas: int = 64,
    ) -> None:
        if (
            not isinstance(shard_processes, int)
            or isinstance(shard_processes, bool)
            or shard_processes < 1
        ):
            raise WarehouseError(
                f"shard_processes must be an int >= 1, got {shard_processes!r}"
            )
        self._path = Path(path)
        self._obs = _resolve_observability(observability)
        self._options = dict(session_options or {})
        if fault_injection:
            self._options["allow_faults"] = True
        self._ctx = multiprocessing.get_context("spawn")
        self._request_ids = itertools.count(1)
        # Guards the ring, the handle map and every key→worker move.
        self._routing_lock = threading.Lock()
        self._ring = HashRing(replicas=replicas)
        self._handles: dict[str, _WorkerHandle] = {}
        self._closed = False
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None

        keys = self._scan_keys()
        names = [f"w{i}" for i in range(shard_processes)]
        for name in names:
            self._ring.add(name)
        assignment = self._ring.assignment(keys)
        try:
            for name in names:
                handle = _WorkerHandle(name)
                handle.keys = {k for k, owner in assignment.items() if owner == name}
                self._spawn(handle)
                self._handles[name] = handle
        except BaseException:
            self.close()
            raise
        self._set_worker_gauge()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _scan_keys(self) -> list[str]:
        keys = []
        for entry in sorted(self._path.iterdir()):
            if entry.is_dir() and (entry / "document.xml").exists():
                keys.append(entry.name)
        return keys

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Start (or restart) *handle*'s process; blocks until READY.

        Callers hold either the routing lock (startup, ring changes) or
        the handle lock (respawn) — never neither.
        """
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, str(self._path), sorted(handle.keys), self._options),
            name=f"repro-shard-{handle.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        transport = PipeTransport(parent_conn)
        try:
            verb, _rid, payload = transport.recv(timeout=_SPAWN_TIMEOUT)
        except (EOFError, OSError, TimeoutError) as exc:
            transport.close()
            process.terminate()
            process.join(1.0)
            raise WarehouseError(
                f"worker {handle.name} died before READY"
            ) from exc
        if verb is not Verb.READY:
            transport.close()
            process.join(1.0)
            raise _reconstruct_error(
                payload if isinstance(payload, dict) else {}
            )
        handle.process = process
        handle.transport = transport
        handle.alive = True

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(_MONITOR_INTERVAL):
            for handle in list(self._handles.values()):
                process = handle.process
                if (
                    process is None
                    or handle.draining
                    or process.is_alive()
                ):
                    continue
                try:
                    self._respawn(handle)
                except Exception:
                    # Spawn failed (resources, lock contention): leave
                    # the handle dead; the next tick tries again and
                    # requests keep failing retryably meanwhile.
                    continue

    def _respawn(self, handle: _WorkerHandle) -> None:
        with handle.lock:
            if self._closed or handle.draining:
                return
            process = handle.process
            if process is None or process.is_alive():
                return  # lost a race with another respawn
            handle.alive = False
            if handle.transport is not None:
                handle.transport.close()
            process.join(0.1)
            self._spawn(handle)
            handle.respawns += 1
        obs = self._obs
        if obs is not None:
            obs.metrics.incr("cluster.respawns")

    def close(self) -> None:
        """Drain every worker and stop the monitor; idempotent."""
        with self._routing_lock:
            if self._closed:
                return
            self._closed = True
        self._stopping.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(2.0)
        for handle in self._handles.values():
            handle.draining = True
            process = handle.process
            transport = handle.transport
            if transport is not None and handle.alive:
                try:
                    with handle.lock:
                        transport.send(Verb.DRAIN, next(self._request_ids), {})
                        transport.recv(timeout=_DRAIN_TIMEOUT)
                except (EOFError, OSError, TimeoutError, WireError):
                    pass
            if process is not None:
                process.join(_DRAIN_TIMEOUT)
                if process.is_alive():
                    process.terminate()
                    process.join(2.0)
                if process.is_alive():
                    process.kill()
                    process.join(2.0)
            if transport is not None:
                transport.close()
            handle.alive = False
        self._set_worker_gauge()

    def __enter__(self) -> "ProcessCollection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise WarehouseError("collection is closed")

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------

    def _request(
        self,
        handle: _WorkerHandle,
        verb: Verb,
        payload: dict,
        timeout: float | None = None,
    ) -> dict:
        """One request/response round trip on *handle*'s pipe.

        Raises :class:`ShardUnavailableError` (retryable) when the
        worker dies mid-request; the monitor respawns it and WAL replay
        restores every acknowledged commit.
        """
        obs = self._obs
        request_id = next(self._request_ids)
        t0 = perf_counter()
        with handle.lock:
            if not handle.alive or handle.transport is None:
                raise ShardUnavailableError(
                    f"worker {handle.name} is down (respawn in progress); retry"
                )
            transport = handle.transport
            try:
                transport.send(verb, request_id, payload)
                while True:
                    reply_verb, reply_id, reply = transport.recv(timeout)
                    if reply_id == request_id:
                        break
                    # A response to an earlier request that timed out:
                    # drop it, keep waiting for ours.
            except (EOFError, OSError) as exc:
                handle.alive = False
                if obs is not None:
                    obs.metrics.incr("cluster.worker_failures")
                raise ShardUnavailableError(
                    f"worker {handle.name} died mid-request; acknowledged "
                    "commits are durable — retry after respawn"
                ) from exc
            except TimeoutError:
                if obs is not None:
                    obs.metrics.incr("cluster.worker_failures")
                raise ShardUnavailableError(
                    f"worker {handle.name} did not answer within {timeout}s"
                ) from None
        if obs is not None:
            obs.metrics.incr("cluster.requests")
            obs.metrics.observe(
                "cluster.ipc_roundtrip_seconds", perf_counter() - t0
            )
        if reply_verb is Verb.ERR and isinstance(reply, dict):
            raise _reconstruct_error(reply)
        if reply_verb is not Verb.OK:
            raise WireError(f"unexpected response verb {reply_verb!r}")
        return reply if isinstance(reply, dict) else {}

    def _handle_for_key(self, key: str) -> _WorkerHandle:
        with self._routing_lock:
            self._check_open()
            if key not in self._all_keys_locked():
                raise WarehouseError(
                    f"no document {key!r} in collection {self._path}"
                )
            return self._handles[self._ring.route(key)]

    def _all_keys_locked(self) -> set[str]:
        keys: set[str] = set()
        for handle in self._handles.values():
            keys |= handle.keys
        return keys

    def _set_worker_gauge(self) -> None:
        obs = self._obs
        if obs is not None:
            obs.metrics.set_gauge(
                "cluster.workers",
                sum(1 for h in self._handles.values() if h.alive),
            )

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    @property
    def observability(self):
        return self._obs

    def keys(self) -> list[str]:
        with self._routing_lock:
            return sorted(self._all_keys_locked())

    def __len__(self) -> int:
        with self._routing_lock:
            return len(self._all_keys_locked())

    def __contains__(self, key: str) -> bool:
        with self._routing_lock:
            return key in self._all_keys_locked()

    def create_document(
        self,
        key: str,
        *,
        root: str | None = None,
        document=None,
    ) -> None:
        """Add a new document under *key* on the worker the ring picks.

        Unlike the thread collection this returns no session — the
        shard lives in another process; use :meth:`update` /
        :meth:`query` against the key.
        """
        self._check_open()
        with self._routing_lock:
            if key in self._all_keys_locked():
                raise WarehouseError(f"document {key!r} already exists")
            handle = self._handles[self._ring.route(key)]
        payload: dict = {"key": key, "root": root}
        if document is not None:
            payload["document_xml"] = fuzzy_to_string(document, indent=False)
        self._request(handle, Verb.CREATE, payload)
        with self._routing_lock:
            handle.keys.add(key)

    # ------------------------------------------------------------------
    # Updates (routed) and queries (fanned out)
    # ------------------------------------------------------------------

    def update(
        self, key: str, transaction, confidence: float | None = None, *, fault=None
    ) -> UpdateReport:
        """Apply one update to document *key*; durable once returned.

        *fault* is the test-only injection point (ignored unless the
        collection was opened with ``fault_injection=True``).
        """
        payload = {
            "key": key,
            "transaction": _serialize_transaction(transaction),
            "confidence": confidence,
        }
        if fault is not None:
            payload["fault"] = fault
        reply = self._request(self._handle_for_key(key), Verb.UPDATE, payload)
        return UpdateReport(**reply["report"])

    def update_many(
        self, key: str, transactions, confidence: float | None = None
    ) -> list[UpdateReport]:
        """Apply a batch to document *key* as one commit."""
        payload = {
            "key": key,
            "transactions": [_serialize_transaction(t) for t in transactions],
            "confidence": confidence,
        }
        reply = self._request(self._handle_for_key(key), Verb.UPDATE, payload)
        return [UpdateReport(**r) for r in reply["reports"]]

    def query(self, query, keys: list[str] | None = None) -> ClusterResultSet:
        """A lazy fan-out query over every shard (or just *keys*)."""
        self._check_open()
        from repro.api.builders import compile_pattern

        pattern = str(compile_pattern(query))
        if keys is None:
            keys = self.keys()
        else:
            keys = list(keys)
            known = set(self.keys())
            for key in keys:
                if key not in known:
                    raise WarehouseError(
                        f"no document {key!r} in collection {self._path}"
                    )
        return ClusterResultSet(self, pattern, keys)

    def _fanout_query(
        self, pattern: str, keys, limit: int | None
    ) -> dict[str, list[ClusterRow]]:
        """Run *pattern* on every worker owning one of *keys*; returns
        rows grouped by document key (each worker's shards answered by
        one QUERY frame, workers in parallel threads)."""
        self._check_open()
        wanted = set(keys)
        with self._routing_lock:
            by_worker: dict[str, list[str]] = {}
            for key in wanted & self._all_keys_locked():
                by_worker.setdefault(self._ring.route(key), []).append(key)
            handles = {name: self._handles[name] for name in by_worker}
        if not by_worker:
            return {}
        obs = self._obs
        if obs is not None and obs.metrics.enabled:
            obs.metrics.incr("serve.fanout_queries")
        t0 = perf_counter()

        def run_worker(name: str) -> dict:
            return self._request(
                handles[name],
                Verb.QUERY,
                {"pattern": pattern, "keys": by_worker[name], "limit": limit},
            )

        rows_by_key: dict[str, list[ClusterRow]] = {}
        if len(by_worker) == 1:
            (name,) = by_worker
            replies = [run_worker(name)]
        else:
            with ThreadPoolExecutor(
                max_workers=len(by_worker), thread_name_prefix="repro-cluster-fanout"
            ) as pool:
                replies = list(pool.map(run_worker, sorted(by_worker)))
        for reply in replies:
            for key, rows in reply.get("rows", {}).items():
                rows_by_key[key] = [ClusterRow(key, row) for row in rows]
        if obs is not None and obs.metrics.enabled:
            obs.metrics.observe("serve.fanout_seconds", perf_counter() - t0)
        return rows_by_key

    # ------------------------------------------------------------------
    # Ring changes
    # ------------------------------------------------------------------

    def add_worker(self) -> str:
        """Grow the ring by one worker; migrates only re-routed keys.

        Returns the new worker's name.  Migration holds the routing
        lock: RELEASE folds each moving shard's WAL into a final
        snapshot on the old worker, ASSIGN opens that snapshot on the
        new one — a committed update can never be left behind.
        """
        with self._routing_lock:
            self._check_open()
            index = 0
            while f"w{index}" in self._handles:
                index += 1
            name = f"w{index}"
            current = self._all_keys_locked()
            before = self._ring.assignment(current)
            self._ring.add(name)
            after = self._ring.assignment(current)
            moving = {k for k in current if before[k] != after[k]}
            handle = _WorkerHandle(name)
            try:
                self._spawn(handle)
            except BaseException:
                self._ring.remove(name)
                raise
            self._handles[name] = handle
            self._migrate_locked(moving, after)
            self._set_worker_gauge()
        return name

    def remove_worker(self, name: str) -> None:
        """Shrink the ring: migrate the worker's keys away, drain it."""
        with self._routing_lock:
            self._check_open()
            if name not in self._handles:
                raise WarehouseError(f"no worker {name!r}")
            if len(self._handles) == 1:
                raise WarehouseError("cannot remove the last worker")
            handle = self._handles[name]
            moving = set(handle.keys)
            self._ring.remove(name)
            after = self._ring.assignment(moving)
            self._migrate_locked(moving, after)
            handle.draining = True
            del self._handles[name]
            self._set_worker_gauge()
        try:
            self._request(handle, Verb.DRAIN, {}, timeout=_DRAIN_TIMEOUT)
        except (ShardUnavailableError, WireError):
            pass
        process = handle.process
        if process is not None:
            process.join(_DRAIN_TIMEOUT)
            if process.is_alive():
                process.terminate()
                process.join(2.0)
        if handle.transport is not None:
            handle.transport.close()
        handle.alive = False

    def _migrate_locked(self, moving: set, assignment: dict[str, str]) -> None:
        """Move each key in *moving* to its new owner (routing lock held)."""
        obs = self._obs
        for key in sorted(moving):
            source = None
            for handle in self._handles.values():
                if key in handle.keys:
                    source = handle
                    break
            target = self._handles[assignment[key]]
            if source is target or source is None:
                continue
            self._request(source, Verb.RELEASE, {"key": key})
            source.keys.discard(key)
            self._request(target, Verb.ASSIGN, {"key": key})
            target.keys.add(key)
            if obs is not None:
                obs.metrics.incr("cluster.migrations")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Aggregate + per-document statistics and cluster accounting."""
        self._check_open()
        documents: dict[str, dict] = {}
        workers: dict[str, dict] = {}
        for name in sorted(self._handles):
            handle = self._handles[name]
            info = {
                "alive": handle.alive,
                "respawns": handle.respawns,
                "keys": sorted(handle.keys),
            }
            if handle.alive:
                try:
                    reply = self._request(handle, Verb.STATS, {})
                    documents.update(reply.get("documents", {}))
                except ShardUnavailableError:
                    info["alive"] = False
            workers[name] = info
        totals = {"nodes": 0, "declared_events": 0, "read_sessions": 0, "sequence": 0}
        for info in documents.values():
            for field in totals:
                totals[field] += info.get(field, 0)
        return {
            "documents": documents,
            "document_count": len(documents),
            "totals": totals,
            "cluster": {
                "mode": "process",
                "workers": workers,
                "processes": len(self._handles),
            },
        }

    def health(self, timeout: float = 2.0) -> dict:
        """Per-shard liveness: ``{"shards": {key: {...}}}``.

        A worker that is dead or does not answer within *timeout*
        reports every key it owns as ``alive: False`` — a recovering
        shard is visible, not invisible.
        """
        self._check_open()
        shards: dict[str, dict] = {}
        for name in sorted(self._handles):
            handle = self._handles[name]
            reply = None
            if handle.alive:
                try:
                    reply = self._request(handle, Verb.HEALTH, {}, timeout=timeout)
                except ShardUnavailableError:
                    reply = None
            if reply is not None:
                for key, info in reply.get("shards", {}).items():
                    shards[key] = {
                        "alive": bool(info.get("alive")),
                        "wal_depth": info.get("wal_depth"),
                        "respawns": handle.respawns,
                    }
            else:
                for key in sorted(handle.keys):
                    shards[key] = {
                        "alive": False,
                        "wal_depth": None,
                        "respawns": handle.respawns,
                    }
        return {"shards": shards}

    def workers(self) -> dict[str, dict]:
        """Live worker accounting: name → alive/respawns/keys."""
        with self._routing_lock:
            return {
                name: {
                    "alive": handle.alive,
                    "respawns": handle.respawns,
                    "keys": sorted(handle.keys),
                }
                for name, handle in sorted(self._handles.items())
            }

    def __repr__(self) -> str:
        state = (
            "closed"
            if self._closed
            else f"{len(self._handles)} workers, {len(self.keys())} documents"
        )
        return f"ProcessCollection({self._path}, {state})"


def _serialize_transaction(transaction) -> str:
    """An update (builder, transaction object or XUpdate string) as the
    XUpdate text that crosses the pipe."""
    if isinstance(transaction, str):
        return transaction
    from repro.api.builders import compile_transaction
    from repro.xmlio.xupdate import transaction_to_string

    return transaction_to_string(compile_transaction(transaction), indent=False)
