"""Supervisor: stateless router over stateful worker processes.

:class:`ProcessCollection` is the process-per-shard sibling of
:class:`~repro.serve.collection.Collection`: the same directory layout,
the same key-routed updates and fan-out queries, but every shard lives
in a worker *process* (:mod:`repro.serve.cluster.worker`) so reader
throughput scales past the GIL.  The supervisor holds no document
state at all:

* a :class:`~repro.serve.cluster.ring.HashRing` routes document keys
  to workers; ring changes (:meth:`add_worker` / :meth:`remove_worker`)
  migrate only the keys whose owner changed, via RELEASE on the old
  worker (which folds the shard's WAL into a final snapshot — the
  pinned-snapshot handoff) followed by ASSIGN on the new one, all
  under the routing lock so no request can observe a half-moved key;
* a monitor thread watches worker liveness; a dead worker is respawned
  with the same key set and recovers from its own WAL inside
  ``Warehouse.open`` before answering READY.  An in-flight request on
  the dying pipe fails fast with the retryable
  :class:`~repro.errors.ShardUnavailableError` — acknowledged commits
  are already durable in that shard's WAL, so the retry contract is
  safe;
* requests are length-prefixed frames (:mod:`.wire`) over a
  per-worker ``multiprocessing.Pipe``, serialized per worker by a
  handle lock and matched to responses by request id.

**Replication** (``replication_factor=R``, default 1): each key is
placed on its R distinct ring successors — element 0 is the primary,
the rest hold replica copies under ``root/.replicas/<worker>/<key>``.
Writes go to the primary first (the acknowledgement; a failed primary
write fails the update, retryably) and are then written through to
every live replica; a replica whose post-apply commit sequence
diverges from the primary's — or that was unreachable, freshly
respawned, or newly placed by a ring change — is marked *stale* and
healed by the monitor thread from the primary's folded snapshot
(SYNC_PULL on the primary, SYNC_PUSH on the replica: the same
pinned-snapshot handoff ring migrations use).  Reads fan out to
primaries as before, but on :class:`~repro.errors.ShardUnavailableError`
or :class:`~repro.serve.cluster.wire.WireError` they *fail over*
per key — fresh replicas first, stale ones as a last resort — and
retry with decorrelated-jitter backoff (:mod:`.retry`) inside the
query's deadline budget, so a ``kill -9`` mid-query costs latency,
not an error.

Workers are started with the ``spawn`` method: the supervisor runs
inside threaded serving processes, and forking a multithreaded parent
inherits locks in undefined states.
"""

from __future__ import annotations

import itertools
import multiprocessing
import random
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from pathlib import Path
from time import monotonic, perf_counter, sleep

import repro.errors as errors_module
from repro.api.options import QueryOptions
from repro.core.update import UpdateReport
from repro.errors import QueryError, ShardUnavailableError, WarehouseError
from repro.serve.cluster.retry import RetryPolicy, call_with_retry
from repro.serve.cluster.ring import HashRing
from repro.serve.cluster.wire import PipeTransport, Verb, WireError
from repro.serve.cluster.worker import worker_main
from repro.warehouse.warehouse import (
    USE_DEFAULT_OBSERVABILITY,
    _resolve_observability,
)
from repro.xmlio.parse import plain_from_string
from repro.xmlio.serialize import fuzzy_to_string

__all__ = ["ClusterEstimate", "ClusterResultSet", "ClusterRow", "ProcessCollection"]

#: Seconds a freshly spawned worker gets to import, recover its shards
#: and answer READY (spawn pays interpreter start + module imports).
_SPAWN_TIMEOUT = 120.0
#: Seconds a DRAIN/close is given before escalating to terminate/kill.
_DRAIN_TIMEOUT = 10.0
#: Liveness poll interval of the monitor thread.
_MONITOR_INTERVAL = 0.05


def _reconstruct_error(payload: dict) -> Exception:
    """An ERR payload back into the closest exception class."""
    family = payload.get("family")
    message = payload.get("message", "worker error")
    cls = getattr(errors_module, str(family), None)
    if isinstance(cls, type) and issubclass(cls, errors_module.ReproError):
        try:
            return cls(message)
        except TypeError:
            pass  # subclasses with richer signatures fall through
    return WarehouseError(f"{family}: {message}")


class ClusterRow:
    """One merged query row from a worker process.

    The same reading surface as
    :class:`~repro.serve.collection.ShardRow` (``document``,
    ``probability``, ``tree``, ``bindings()``): the answer tree crossed
    the pipe as compact XML and is parsed lazily on first access.
    """

    __slots__ = ("document", "probability", "_bindings", "_tree_xml", "_tree")

    def __init__(self, document: str, payload: dict) -> None:
        self.document = document
        self.probability = payload["probability"]
        self._bindings = payload["bindings"]
        self._tree_xml = payload["tree_xml"]
        self._tree = None

    @property
    def tree(self):
        if self._tree is None:
            self._tree = plain_from_string(self._tree_xml)
        return self._tree

    def bindings(self) -> dict[str, str | None]:
        return dict(self._bindings)

    def __repr__(self) -> str:
        return f"ClusterRow({self.document!r}, p={self.probability:.4f})"


class ClusterEstimate:
    """One anytime Monte-Carlo answer from a worker process.

    The same reading surface as
    :class:`~repro.core.montecarlo.AnswerEstimate` plus the shard's
    ``document`` key; the answer tree crossed the pipe as compact XML
    and is parsed lazily on first access.
    """

    __slots__ = (
        "document",
        "probability",
        "stderr",
        "samples",
        "occurrences",
        "_tree_xml",
        "_tree",
    )

    def __init__(self, document: str, payload: dict) -> None:
        self.document = document
        self.probability = payload["probability"]
        self.stderr = payload["stderr"]
        self.samples = payload["samples"]
        self.occurrences = payload["occurrences"]
        self._tree_xml = payload["tree_xml"]
        self._tree = None

    @property
    def tree(self):
        if self._tree is None:
            self._tree = plain_from_string(self._tree_xml)
        return self._tree

    def __repr__(self) -> str:
        return (
            f"ClusterEstimate({self.document!r}, p={self.probability:.4f}"
            f"±{self.stderr:.4f})"
        )


class ClusterResultSet:
    """Lazy fan-out query over a process collection's workers.

    Mirrors :class:`~repro.serve.collection.CollectionResultSet`:
    immutable, each refinement (``limit``, ``order_by_probability``,
    ``min_probability``) returns a new set, iteration yields rows in
    deterministic (shard key, row) order — or globally by descending
    probability once ordered.  The options are pushed to every worker
    (a shard contributes at most n rows, already branch-and-bound
    pruned) and capped again at the merge.
    """

    __slots__ = ("_collection", "_pattern", "_keys", "_options")

    def __init__(
        self, collection, pattern: str, keys, limit=None, *, options=None
    ) -> None:
        self._collection = collection
        self._pattern = pattern
        self._keys = keys
        self._options = (
            options if options is not None else QueryOptions(limit=limit)
        )

    @property
    def options(self) -> QueryOptions:
        return self._options

    @property
    def _limit(self):
        return self._options.limit

    def _replace(self, **changes) -> "ClusterResultSet":
        return ClusterResultSet(
            self._collection,
            self._pattern,
            self._keys,
            options=self._options.replace(**changes),
        )

    def limit(self, n: int) -> "ClusterResultSet":
        if not isinstance(n, int) or isinstance(n, bool) or n < 0:
            raise QueryError(f"limit must be a non-negative int, got {n!r}")
        capped = n if self._limit is None else min(self._limit, n)
        return self._replace(limit=capped)

    def order_by_probability(self) -> "ClusterResultSet":
        return self._replace(order="probability")

    def min_probability(self, p) -> "ClusterResultSet":
        if isinstance(p, bool) or not isinstance(p, (int, float)) or not 0.0 <= p <= 1.0:
            raise QueryError(
                f"min_probability must be a number in [0, 1], got {p!r}"
            )
        current = self._options.min_probability
        floor = float(p) if current is None else max(current, float(p))
        return self._replace(min_probability=floor)

    def _wire_options(self):
        """The options to ship, or None to keep the legacy frame shape.

        A plain query (document order, no floor, no estimate) stays on
        the pattern+limit payload so its wire frames — and therefore
        the PR-7 byte-parity contract — are unchanged.  The pattern
        travels in its own frame field, so it is stripped here."""
        options = self._options.replace(pattern=None, document=None)
        if options == QueryOptions(limit=options.limit):
            return None
        return options

    def __iter__(self):
        if self._limit == 0:
            return iter(())
        rows_by_key = self._collection._fanout_query(
            self._pattern, self._keys, self._limit, options=self._wire_options()
        )
        if self._options.order == "probability":
            return self._merge_probability(rows_by_key)
        return self._merge(rows_by_key)

    def _merge(self, rows_by_key: dict[str, list[ClusterRow]]):
        emitted = 0
        for key in sorted(rows_by_key):
            for row in rows_by_key[key]:
                yield row
                emitted += 1
                if self._limit is not None and emitted >= self._limit:
                    return

    def _merge_probability(self, rows_by_key: dict[str, list[ClusterRow]]):
        """Global probability order across shards, ties by (key, rank).

        Each worker already returned its rows in descending probability
        with ties broken by local emission order, so sorting on
        ``(-probability, key, rank)`` reproduces exactly the order a
        single session over the union would produce."""
        merged = []
        for key in sorted(rows_by_key):
            for rank, row in enumerate(rows_by_key[key]):
                merged.append((-row.probability, key, rank, row))
        merged.sort(key=lambda entry: entry[:3])
        yield from (entry[3] for entry in merged[: self._limit])

    def estimate(
        self, *, epsilon=None, deadline_ms=None, seed: int = 0
    ) -> list[tuple[str, "ClusterEstimate"]]:
        """Anytime Monte-Carlo estimates fanned out to every shard.

        Returns ``(document, estimate)`` pairs merged by descending
        probability (ties by shard key then per-shard order) and capped
        at the limit — the same merge discipline as the exact
        probability-ordered path."""
        if epsilon is None:
            epsilon = self._options.epsilon
        if deadline_ms is None:
            deadline_ms = self._options.deadline_ms
        if self._limit == 0:
            return []
        wire = self._options.replace(
            pattern=None, document=None, epsilon=epsilon, deadline_ms=deadline_ms
        )
        if not wire.is_estimate:
            # Match estimate_answers' default target so the worker-side
            # sampler actually converges instead of running forever.
            wire = wire.replace(epsilon=0.05)
        rows_by_key = self._collection._fanout_query(
            self._pattern,
            self._keys,
            self._limit,
            options=wire,
            seed=seed,
            wrap=ClusterEstimate,
        )
        merged = []
        for key in sorted(rows_by_key):
            for rank, estimate in enumerate(rows_by_key[key]):
                merged.append((-estimate.probability, key, rank, estimate))
        merged.sort(key=lambda entry: entry[:3])
        return [(entry[3].document, entry[3]) for entry in merged[: self._limit]]

    def all(self) -> list[ClusterRow]:
        return list(self)

    def first(self) -> ClusterRow | None:
        for row in self.limit(1):
            return row
        return None

    def count(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:
        limit = "" if self._limit is None else f", limit={self._limit}"
        return (
            f"ClusterResultSet({self._pattern!r}, "
            f"{len(self._keys)} shards{limit})"
        )


class _WorkerHandle:
    """One worker process plus its request channel and accounting."""

    __slots__ = (
        "name",
        "process",
        "transport",
        "lock",
        "keys",
        "replica_keys",
        "respawns",
        "alive",
        "draining",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.process = None
        self.transport: PipeTransport | None = None
        # Serializes request/response pairs on the pipe; also what a
        # respawn holds while swapping in the new process.
        self.lock = threading.Lock()
        self.keys: set[str] = set()
        self.replica_keys: set[str] = set()
        self.respawns = 0
        self.alive = False
        self.draining = False


class ProcessCollection:
    """N worker processes serving a collection directory as one store.

    Open through :func:`repro.serve.connect_collection` with
    ``mode="process"`` — the constructor expects an *existing*
    collection layout (the manifest and any shard directories).

    ``session_options`` must be plain data (ints/bools/None): they
    cross the spawn boundary.  ``fault_injection=True`` lets tests ask
    workers to SIGKILL themselves around a commit — never enable it in
    real serving.

    ``replication_factor=R`` keeps a copy of every document on its R
    distinct ring successors (capped at the worker count); reads fail
    over between copies inside ``query_deadline`` seconds using
    *retry_policy* for backoff, and ``attempt_timeout`` bounds each
    individual attempt so one hung worker cannot eat the whole budget.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        shard_processes: int,
        session_options: dict | None = None,
        observability=USE_DEFAULT_OBSERVABILITY,
        fault_injection: bool = False,
        replicas: int = 64,
        replication_factor: int = 1,
        retry_policy: RetryPolicy | None = None,
        query_deadline: float = 30.0,
        attempt_timeout: float | None = None,
    ) -> None:
        if (
            not isinstance(shard_processes, int)
            or isinstance(shard_processes, bool)
            or shard_processes < 1
        ):
            raise WarehouseError(
                f"shard_processes must be an int >= 1, got {shard_processes!r}"
            )
        if (
            not isinstance(replication_factor, int)
            or isinstance(replication_factor, bool)
            or replication_factor < 1
        ):
            raise WarehouseError(
                f"replication_factor must be an int >= 1, got {replication_factor!r}"
            )
        if query_deadline <= 0:
            raise WarehouseError(
                f"query_deadline must be > 0, got {query_deadline!r}"
            )
        self._path = Path(path)
        self._obs = _resolve_observability(observability)
        self._options = dict(session_options or {})
        if fault_injection:
            self._options["allow_faults"] = True
        self._ctx = multiprocessing.get_context("spawn")
        self._request_ids = itertools.count(1)
        # Guards the ring, the handle map and every key→worker move.
        self._routing_lock = threading.Lock()
        self._ring = HashRing(replicas=replicas)
        self._handles: dict[str, _WorkerHandle] = {}
        self._closed = False
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None
        # Replication state: per-key write locks serialize primary-ack +
        # write-through + resync for one key; the stale set is the heal
        # queue the monitor thread drains.
        self._replication = replication_factor
        self._retry_policy = retry_policy or RetryPolicy()
        self._query_deadline = float(query_deadline)
        self._attempt_timeout = attempt_timeout
        self._retry_rng = random.Random()
        self._key_locks: dict[str, threading.Lock] = {}
        self._key_locks_guard = threading.Lock()
        self._stale_lock = threading.Lock()
        self._stale: set[tuple[str, str]] = set()
        self._commit_seq: dict[str, int] = {}
        self._replica_seq: dict[tuple[str, str], int] = {}

        keys = self._scan_keys()
        names = [f"w{i}" for i in range(shard_processes)]
        for name in names:
            self._ring.add(name)
        assignment = self._ring.assignment(keys)
        placement = (
            self._ring.placement(keys, self._replication)
            if self._replication > 1
            else {}
        )
        try:
            for name in names:
                handle = _WorkerHandle(name)
                handle.keys = {k for k, owner in assignment.items() if owner == name}
                handle.replica_keys = {
                    k for k, owners in placement.items() if name in owners[1:]
                }
                self._spawn(handle)
                self._handles[name] = handle
        except BaseException:
            self.close()
            raise
        self._set_worker_gauge()
        # Populate every replica before serving: the first failover must
        # find copies, not empty directories.
        for name, handle in self._handles.items():
            self._mark_stale((key, name) for key in handle.replica_keys)
        self._resync_stale()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _scan_keys(self) -> list[str]:
        keys = []
        for entry in sorted(self._path.iterdir()):
            if entry.is_dir() and (entry / "document.xml").exists():
                keys.append(entry.name)
        return keys

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Start (or restart) *handle*'s process; blocks until READY.

        Callers hold either the routing lock (startup, ring changes) or
        the handle lock (respawn) — never neither.
        """
        parent_conn, child_conn = self._ctx.Pipe()
        options = dict(self._options, worker_name=handle.name)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, str(self._path), sorted(handle.keys), options),
            name=f"repro-shard-{handle.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        transport = PipeTransport(parent_conn)
        try:
            verb, _rid, payload = transport.recv(timeout=_SPAWN_TIMEOUT)
        except (EOFError, OSError, TimeoutError) as exc:
            transport.close()
            process.terminate()
            process.join(1.0)
            raise WarehouseError(
                f"worker {handle.name} died before READY"
            ) from exc
        if verb is not Verb.READY:
            transport.close()
            process.join(1.0)
            raise _reconstruct_error(
                payload if isinstance(payload, dict) else {}
            )
        handle.process = process
        handle.transport = transport
        handle.alive = True

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(_MONITOR_INTERVAL):
            for handle in list(self._handles.values()):
                process = handle.process
                if (
                    process is None
                    or handle.draining
                    or process.is_alive()
                ):
                    continue
                try:
                    self._respawn(handle)
                except Exception:
                    # Spawn failed (resources, lock contention): leave
                    # the handle dead; the next tick tries again and
                    # requests keep failing retryably meanwhile.
                    continue
            if self._replication > 1 and not self._closed:
                try:
                    self._resync_stale()
                except Exception:
                    continue  # heal again next tick

    def _respawn(self, handle: _WorkerHandle) -> None:
        with handle.lock:
            if self._closed or handle.draining:
                return
            process = handle.process
            if process is None or process.is_alive():
                return  # lost a race with another respawn
            handle.alive = False
            if handle.transport is not None:
                handle.transport.close()
            process.join(0.1)
            self._spawn(handle)
            handle.respawns += 1
        # A respawned worker recovered its *primary* shards from their
        # WALs, but its replica copies may have missed write-throughs
        # while it was down — re-sync them all from their primaries.
        self._mark_stale((key, handle.name) for key in handle.replica_keys)
        obs = self._obs
        if obs is not None:
            obs.metrics.incr("cluster.respawns")

    def close(self) -> None:
        """Drain every worker and stop the monitor; idempotent."""
        with self._routing_lock:
            if self._closed:
                return
            self._closed = True
        self._stopping.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(2.0)
        for handle in self._handles.values():
            handle.draining = True
            process = handle.process
            transport = handle.transport
            if transport is not None and handle.alive:
                try:
                    with handle.lock:
                        transport.send(Verb.DRAIN, next(self._request_ids), {})
                        transport.recv(timeout=_DRAIN_TIMEOUT)
                except (EOFError, OSError, TimeoutError, WireError):
                    pass
            if process is not None:
                process.join(_DRAIN_TIMEOUT)
                if process.is_alive():
                    process.terminate()
                    process.join(2.0)
                if process.is_alive():
                    process.kill()
                    process.join(2.0)
            if transport is not None:
                transport.close()
            handle.alive = False
        self._set_worker_gauge()

    def __enter__(self) -> "ProcessCollection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise WarehouseError("collection is closed")

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------

    def _request(
        self,
        handle: _WorkerHandle,
        verb: Verb,
        payload: dict,
        timeout: float | None = None,
    ) -> dict:
        """One request/response round trip on *handle*'s pipe.

        Raises :class:`ShardUnavailableError` (retryable) when the
        worker dies mid-request; the monitor respawns it and WAL replay
        restores every acknowledged commit.
        """
        obs = self._obs
        request_id = next(self._request_ids)
        t0 = perf_counter()
        with handle.lock:
            if not handle.alive or handle.transport is None:
                raise ShardUnavailableError(
                    f"worker {handle.name} is down (respawn in progress); retry"
                )
            transport = handle.transport
            try:
                transport.send(verb, request_id, payload)
                while True:
                    reply_verb, reply_id, reply = transport.recv(timeout)
                    if reply_id == request_id:
                        break
                    # A response to an earlier request that timed out:
                    # drop it, keep waiting for ours.
            except (EOFError, OSError) as exc:
                handle.alive = False
                if obs is not None:
                    obs.metrics.incr("cluster.worker_failures")
                raise ShardUnavailableError(
                    f"worker {handle.name} died mid-request; acknowledged "
                    "commits are durable — retry after respawn"
                ) from exc
            except TimeoutError:
                if obs is not None:
                    obs.metrics.incr("cluster.worker_failures")
                raise ShardUnavailableError(
                    f"worker {handle.name} did not answer within {timeout}s"
                ) from None
        if obs is not None:
            obs.metrics.incr("cluster.requests")
            obs.metrics.observe(
                "cluster.ipc_roundtrip_seconds", perf_counter() - t0
            )
        if reply_verb is Verb.ERR and isinstance(reply, dict):
            raise _reconstruct_error(reply)
        if reply_verb is not Verb.OK:
            raise WireError(f"unexpected response verb {reply_verb!r}")
        return reply if isinstance(reply, dict) else {}

    def _handle_for_key(self, key: str) -> _WorkerHandle:
        with self._routing_lock:
            self._check_open()
            if key not in self._all_keys_locked():
                raise WarehouseError(
                    f"no document {key!r} in collection {self._path}"
                )
            return self._handles[self._ring.route(key)]

    def _placement_for(self, key: str) -> list[str]:
        """``[primary worker, *replica workers]`` for *key*."""
        with self._routing_lock:
            self._check_open()
            if key not in self._all_keys_locked():
                raise WarehouseError(
                    f"no document {key!r} in collection {self._path}"
                )
            return self._ring.successors(key, self._replication)

    def _all_keys_locked(self) -> set[str]:
        keys: set[str] = set()
        for handle in self._handles.values():
            keys |= handle.keys
        return keys

    def _set_worker_gauge(self) -> None:
        obs = self._obs
        if obs is not None:
            obs.metrics.set_gauge(
                "cluster.workers",
                sum(1 for h in self._handles.values() if h.alive),
            )

    # ------------------------------------------------------------------
    # Replication plumbing
    # ------------------------------------------------------------------

    def _key_lock(self, key: str) -> threading.Lock:
        with self._key_locks_guard:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.Lock()
            return lock

    def _mark_stale(self, pairs) -> None:
        with self._stale_lock:
            self._stale.update(pairs)
        self._set_replication_gauges()

    def _clear_stale(self, pair: tuple[str, str]) -> None:
        with self._stale_lock:
            self._stale.discard(pair)
        self._set_replication_gauges()

    def _stale_pairs(self) -> set[tuple[str, str]]:
        with self._stale_lock:
            return set(self._stale)

    def _set_replication_gauges(self) -> None:
        obs = self._obs
        if obs is None or self._replication <= 1:
            return
        with self._stale_lock:
            stale = len(self._stale)
        lag = 0
        for (key, _name), seq in list(self._replica_seq.items()):
            head = self._commit_seq.get(key)
            if head is not None:
                lag = max(lag, head - seq)
        obs.metrics.set_gauge("cluster.stale_replicas", stale)
        obs.metrics.set_gauge("cluster.replica_lag", max(lag, 0))

    def _replicate(self, key: str, replicas: list[str], payload: dict, sequence) -> None:
        """Write *payload* through to each replica; divergence → stale."""
        obs = self._obs
        replica_payload = {k: v for k, v in payload.items() if k != "fault"}
        replica_payload["replica"] = True
        for name in replicas:
            handle = self._handles.get(name)
            fresh = False
            if handle is not None and handle.alive:
                try:
                    reply = self._request(
                        handle, Verb.UPDATE, replica_payload,
                        timeout=self._attempt_timeout,
                    )
                    # The replica must land on the same commit sequence
                    # as the primary; anything else is divergence.
                    fresh = sequence is not None and reply.get("sequence") == sequence
                except (ShardUnavailableError, WireError):
                    fresh = False
            if fresh:
                self._replica_seq[(key, name)] = sequence
                self._clear_stale((key, name))
            else:
                self._mark_stale([(key, name)])
        self._set_replication_gauges()

    def _write(self, key: str, payload: dict) -> dict:
        """Primary-acknowledged write with replica write-through."""
        with self._key_lock(key):
            placement = self._placement_for(key)
            handle = self._handles[placement[0]]
            try:
                reply = self._request(handle, Verb.UPDATE, payload)
            except ShardUnavailableError:
                # The primary died inside the commit window: the commit
                # may be durable in its WAL without any replica having
                # seen it.  Resync them all once it is back.
                self._mark_stale((key, name) for name in placement[1:])
                raise
            sequence = reply.get("sequence")
            if sequence is not None:
                self._commit_seq[key] = sequence
            if len(placement) > 1:
                self._replicate(key, placement[1:], payload, sequence)
        return reply

    def _resync_pair(self, key: str, name: str) -> bool:
        """Heal worker *name*'s replica of *key* from the primary's
        folded snapshot; True when healed or no longer needed."""
        with self._key_lock(key):
            try:
                placement = self._placement_for(key)
            except WarehouseError:
                return True  # key or collection gone
            if name not in placement[1:]:
                return True  # no longer a replica after a ring change
            primary = self._handles.get(placement[0])
            replica = self._handles.get(name)
            if (
                primary is None
                or replica is None
                or not primary.alive
                or not replica.alive
            ):
                return False  # respawn in progress; heal next tick
            try:
                pulled = self._request(primary, Verb.SYNC_PULL, {"key": key})
                pushed = self._request(
                    replica,
                    Verb.SYNC_PUSH,
                    {
                        "key": key,
                        "sequence": pulled["sequence"],
                        "files": pulled["files"],
                    },
                )
            except (ShardUnavailableError, WireError):
                return False
            if pushed.get("sequence") != pulled["sequence"]:
                return False
            self._replica_seq[(key, name)] = pulled["sequence"]
            self._commit_seq[key] = pulled["sequence"]
            obs = self._obs
            if obs is not None:
                obs.metrics.incr("cluster.resyncs")
                obs.metrics.incr(
                    "cluster.resync_bytes",
                    sum(len(blob) for blob in pulled["files"].values()),
                )
            return True

    def _resync_stale(self) -> None:
        for key, name in sorted(self._stale_pairs()):
            if self._closed:
                return
            if self._resync_pair(key, name):
                self._clear_stale((key, name))

    def await_replication(self, timeout: float = 30.0) -> None:
        """Block until no replica is stale (all copies healed).

        Raises :class:`~repro.errors.WarehouseError` when *timeout*
        elapses first — e.g. a primary that never came back.
        """
        self._check_open()
        deadline = monotonic() + timeout
        while True:
            pairs = self._stale_pairs()
            if not pairs:
                return
            if monotonic() >= deadline:
                raise WarehouseError(
                    f"replication did not settle within {timeout}s; "
                    f"stale: {sorted(pairs)}"
                )
            sleep(_MONITOR_INTERVAL)

    def replicas_of(self, key: str) -> list[str]:
        """``[primary, *replicas]`` worker names serving *key*."""
        return self._placement_for(key)

    # ------------------------------------------------------------------
    # Documents
    # ------------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    @property
    def observability(self):
        return self._obs

    @property
    def replication_factor(self) -> int:
        return self._replication

    def keys(self) -> list[str]:
        with self._routing_lock:
            return sorted(self._all_keys_locked())

    def __len__(self) -> int:
        with self._routing_lock:
            return len(self._all_keys_locked())

    def __contains__(self, key: str) -> bool:
        with self._routing_lock:
            return key in self._all_keys_locked()

    def create_document(
        self,
        key: str,
        *,
        root: str | None = None,
        document=None,
    ) -> None:
        """Add a new document under *key* on the worker the ring picks.

        Unlike the thread collection this returns no session — the
        shard lives in another process; use :meth:`update` /
        :meth:`query` against the key.  With replication the new
        document's copies are synced to its replica workers before this
        returns.
        """
        self._check_open()
        with self._routing_lock:
            if key in self._all_keys_locked():
                raise WarehouseError(f"document {key!r} already exists")
            placement = self._ring.successors(key, self._replication)
            handle = self._handles[placement[0]]
        payload: dict = {"key": key, "root": root}
        if document is not None:
            payload["document_xml"] = fuzzy_to_string(document, indent=False)
        self._request(handle, Verb.CREATE, payload)
        with self._routing_lock:
            handle.keys.add(key)
            for name in placement[1:]:
                self._handles[name].replica_keys.add(key)
        self._mark_stale((key, name) for name in placement[1:])
        self._resync_stale()

    # ------------------------------------------------------------------
    # Updates (routed) and queries (fanned out)
    # ------------------------------------------------------------------

    def update(
        self, key: str, transaction, confidence: float | None = None, *, fault=None
    ) -> UpdateReport:
        """Apply one update to document *key*; durable once returned.

        The primary's acknowledgement is the durability point; live
        replicas are then written through before this returns (a
        replica that failed or diverged is healed asynchronously).
        *fault* is the test-only injection point (ignored unless the
        collection was opened with ``fault_injection=True``).
        """
        payload = {
            "key": key,
            "transaction": _serialize_transaction(transaction),
            "confidence": confidence,
        }
        if fault is not None:
            payload["fault"] = fault
        reply = self._write(key, payload)
        return UpdateReport(**reply["report"])

    def update_many(
        self, key: str, transactions, confidence: float | None = None
    ) -> list[UpdateReport]:
        """Apply a batch to document *key* as one commit."""
        payload = {
            "key": key,
            "transactions": [_serialize_transaction(t) for t in transactions],
            "confidence": confidence,
        }
        reply = self._write(key, payload)
        return [UpdateReport(**r) for r in reply["reports"]]

    def query(
        self, query=None, keys: list[str] | None = None, *, options=None
    ) -> ClusterResultSet:
        """A lazy fan-out query over every shard (or just *keys*).

        Accepts the same :class:`~repro.api.options.QueryOptions`
        surface as :meth:`Collection.query`: the pattern may live on
        the options object, and ``options.document`` narrows the query
        to one shard when *keys* is not given.
        """
        self._check_open()
        from repro.api.builders import compile_pattern

        if options is not None:
            if not isinstance(options, QueryOptions):
                raise QueryError(
                    f"options must be a QueryOptions, got {options!r}"
                )
            if query is None:
                if options.pattern is None:
                    raise QueryError(
                        "query(options=...) needs options.pattern "
                        "when no pattern argument is given"
                    )
                query = options.pattern
            if keys is None and options.document is not None:
                keys = [options.document]
        elif query is None:
            raise QueryError("query() needs a pattern or options")

        pattern = str(compile_pattern(query))
        if keys is None:
            keys = self.keys()
        else:
            keys = list(keys)
            known = set(self.keys())
            for key in keys:
                if key not in known:
                    raise WarehouseError(
                        f"no document {key!r} in collection {self._path}"
                    )
        return ClusterResultSet(self, pattern, keys, options=options)

    def _fanout_query(
        self,
        pattern: str,
        keys,
        limit: int | None,
        options: QueryOptions | None = None,
        seed: int = 0,
        wrap=ClusterRow,
    ) -> dict[str, list[ClusterRow]]:
        """Run *pattern* on every worker owning one of *keys*; returns
        rows grouped by document key (each worker's shards answered by
        one QUERY frame, workers in parallel threads).  A worker whose
        batch fails retryably degrades to per-key replica failover.

        *options* (when not None) ships the QueryOptions wire form so
        workers run the bounded/estimate execution paths; *wrap* builds
        the per-row object (:class:`ClusterRow` for exact rows,
        :class:`ClusterEstimate` for Monte-Carlo answers)."""
        self._check_open()
        wanted = set(keys)
        with self._routing_lock:
            by_worker: dict[str, list[str]] = {}
            for key in wanted & self._all_keys_locked():
                by_worker.setdefault(self._ring.route(key), []).append(key)
            handles = {name: self._handles[name] for name in by_worker}
        if not by_worker:
            return {}
        obs = self._obs
        if obs is not None and obs.metrics.enabled:
            obs.metrics.incr("serve.fanout_queries")
        t0 = perf_counter()
        deadline = monotonic() + self._query_deadline
        wire_options = None if options is None else options.to_json()

        def run_worker(name: str) -> dict:
            batch = sorted(by_worker[name])
            payload = {"pattern": pattern, "keys": batch, "limit": limit}
            if wire_options is not None:
                payload["options"] = wire_options
                payload["seed"] = seed
            try:
                reply = self._request(
                    handles[name],
                    Verb.QUERY,
                    payload,
                    timeout=self._attempt_timeout,
                )
                return reply.get("rows", {})
            except (ShardUnavailableError, WireError) as exc:
                if self._replication <= 1:
                    raise
                return {
                    key: self._query_key_failover(
                        key,
                        pattern,
                        limit,
                        deadline,
                        first_error=exc,
                        wire_options=wire_options,
                        seed=seed,
                    )
                    for key in batch
                }

        rows_by_key: dict[str, list[ClusterRow]] = {}
        if len(by_worker) == 1:
            (name,) = by_worker
            replies = [run_worker(name)]
        else:
            with ThreadPoolExecutor(
                max_workers=len(by_worker), thread_name_prefix="repro-cluster-fanout"
            ) as pool:
                replies = list(pool.map(run_worker, sorted(by_worker)))
        for reply in replies:
            for key, rows in reply.items():
                rows_by_key[key] = [wrap(key, row) for row in rows]
        if obs is not None and obs.metrics.enabled:
            obs.metrics.observe("serve.fanout_seconds", perf_counter() - t0)
        return rows_by_key

    def _query_key_failover(
        self,
        key: str,
        pattern: str,
        limit,
        deadline: float,
        first_error=None,
        wire_options=None,
        seed: int = 0,
    ) -> list[dict]:
        """One key's rows from whichever copy answers first.

        Candidate order: primary, fresh replicas, stale replicas (a
        stale copy is still a better answer than an error when nothing
        else is up).  A full sweep that finds no live copy backs off
        with decorrelated jitter and tries again — the monitor may be
        mid-respawn — until the deadline budget is spent, at which
        point the last real error propagates.
        """
        obs = self._obs
        last_error = first_error

        def sweep() -> list[dict]:
            nonlocal last_error
            placement = self._placement_for(key)
            stale = self._stale_pairs()
            fresh = [n for n in placement[1:] if (key, n) not in stale]
            lagging = [n for n in placement[1:] if (key, n) in stale]
            for position, name in enumerate([placement[0]] + fresh + lagging):
                handle = self._handles.get(name)
                if handle is None or not handle.alive:
                    continue
                remaining = deadline - monotonic()
                if remaining <= 0:
                    break
                timeout = (
                    min(remaining, self._attempt_timeout)
                    if self._attempt_timeout is not None
                    else remaining
                )
                payload = {
                    "pattern": pattern,
                    "keys": [key],
                    "limit": limit,
                    "replica": position > 0,
                }
                if wire_options is not None:
                    payload["options"] = wire_options
                    payload["seed"] = seed
                try:
                    reply = self._request(
                        handle,
                        Verb.QUERY,
                        payload,
                        timeout=timeout,
                    )
                except (ShardUnavailableError, WireError) as exc:
                    last_error = exc
                    continue
                if position > 0 and obs is not None:
                    obs.metrics.incr("cluster.failovers")
                return reply.get("rows", {}).get(key, [])
            if last_error is not None:
                raise last_error
            raise ShardUnavailableError(f"no live copy of {key!r}")

        span = (
            obs.tracer.span("cluster_failover", document=key)
            if obs is not None and obs.tracer.enabled
            else nullcontext()
        )
        with span:
            return call_with_retry(
                sweep,
                deadline=deadline,
                policy=self._retry_policy,
                classify=lambda exc: isinstance(
                    exc, (ShardUnavailableError, WireError)
                ),
                rng=self._retry_rng,
                on_retry=lambda attempt, delay, exc: (
                    obs.metrics.incr("cluster.retries") if obs is not None else None
                ),
            )

    # ------------------------------------------------------------------
    # Ring changes
    # ------------------------------------------------------------------

    def add_worker(self) -> str:
        """Grow the ring by one worker; migrates only re-routed keys.

        Returns the new worker's name.  Migration holds the routing
        lock: RELEASE folds each moving shard's WAL into a final
        snapshot on the old worker, ASSIGN opens that snapshot on the
        new one — a committed update can never be left behind.  Replica
        placement is recomputed afterwards and new copies are synced
        before returning.
        """
        with self._routing_lock:
            self._check_open()
            index = 0
            while f"w{index}" in self._handles:
                index += 1
            name = f"w{index}"
            current = self._all_keys_locked()
            before = self._ring.assignment(current)
            self._ring.add(name)
            after = self._ring.assignment(current)
            moving = {k for k in current if before[k] != after[k]}
            handle = _WorkerHandle(name)
            try:
                self._spawn(handle)
            except BaseException:
                self._ring.remove(name)
                raise
            self._handles[name] = handle
            self._migrate_locked(moving, after)
            new_pairs = self._reassign_replicas_locked()
            self._set_worker_gauge()
        self._mark_stale(new_pairs)
        self._resync_stale()
        return name

    def remove_worker(self, name: str) -> None:
        """Shrink the ring: migrate the worker's keys away, drain it."""
        with self._routing_lock:
            self._check_open()
            if name not in self._handles:
                raise WarehouseError(f"no worker {name!r}")
            if len(self._handles) == 1:
                raise WarehouseError("cannot remove the last worker")
            handle = self._handles[name]
            moving = set(handle.keys)
            self._ring.remove(name)
            after = self._ring.assignment(moving)
            self._migrate_locked(moving, after)
            handle.draining = True
            del self._handles[name]
            new_pairs = self._reassign_replicas_locked()
            self._set_worker_gauge()
        with self._stale_lock:
            self._stale = {(k, n) for k, n in self._stale if n != name}
        self._replica_seq = {
            (k, n): seq for (k, n), seq in self._replica_seq.items() if n != name
        }
        self._mark_stale(new_pairs)
        try:
            self._request(handle, Verb.DRAIN, {}, timeout=_DRAIN_TIMEOUT)
        except (ShardUnavailableError, WireError):
            pass
        process = handle.process
        if process is not None:
            process.join(_DRAIN_TIMEOUT)
            if process.is_alive():
                process.terminate()
                process.join(2.0)
        if handle.transport is not None:
            handle.transport.close()
        handle.alive = False
        self._resync_stale()

    def _migrate_locked(self, moving: set, assignment: dict[str, str]) -> None:
        """Move each key in *moving* to its new owner (routing lock held)."""
        obs = self._obs
        for key in sorted(moving):
            source = None
            for handle in self._handles.values():
                if key in handle.keys:
                    source = handle
                    break
            target = self._handles[assignment[key]]
            if source is target or source is None:
                continue
            self._request(source, Verb.RELEASE, {"key": key})
            source.keys.discard(key)
            self._request(target, Verb.ASSIGN, {"key": key})
            target.keys.add(key)
            if obs is not None:
                obs.metrics.incr("cluster.migrations")

    def _reassign_replicas_locked(self) -> list[tuple[str, str]]:
        """Recompute every worker's replica set from the current ring
        (routing lock held).  Copies that moved away are released on
        their old worker; returns the (key, worker) pairs that need a
        fresh sync."""
        if self._replication <= 1:
            for handle in self._handles.values():
                handle.replica_keys = set()
            return []
        placement = self._ring.placement(
            self._all_keys_locked(), self._replication
        )
        new_pairs: list[tuple[str, str]] = []
        for name, handle in self._handles.items():
            wanted = {k for k, owners in placement.items() if name in owners[1:]}
            dropped = handle.replica_keys - wanted
            added = wanted - handle.replica_keys
            handle.replica_keys = wanted
            for key in sorted(dropped):
                self._replica_seq.pop((key, name), None)
                with self._stale_lock:
                    self._stale.discard((key, name))
                if handle.alive:
                    try:
                        self._request(
                            handle, Verb.RELEASE, {"key": key, "replica": True}
                        )
                    except (ShardUnavailableError, WireError):
                        pass  # the copy dies with the worker either way
            new_pairs.extend((key, name) for key in sorted(added))
        return new_pairs

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Aggregate + per-document statistics and cluster accounting."""
        self._check_open()
        documents: dict[str, dict] = {}
        workers: dict[str, dict] = {}
        for name in sorted(self._handles):
            handle = self._handles[name]
            info = {
                "alive": handle.alive,
                "respawns": handle.respawns,
                "keys": sorted(handle.keys),
                "replica_keys": sorted(handle.replica_keys),
            }
            if handle.alive:
                try:
                    reply = self._request(handle, Verb.STATS, {})
                    documents.update(reply.get("documents", {}))
                except ShardUnavailableError:
                    info["alive"] = False
            workers[name] = info
        totals = {"nodes": 0, "declared_events": 0, "read_sessions": 0, "sequence": 0}
        for info in documents.values():
            for field in totals:
                totals[field] += info.get(field, 0)
        with self._stale_lock:
            stale = len(self._stale)
        return {
            "documents": documents,
            "document_count": len(documents),
            "totals": totals,
            "cluster": {
                "mode": "process",
                "workers": workers,
                "processes": len(self._handles),
                "replication": {
                    "factor": self._replication,
                    "stale_replicas": stale,
                },
            },
        }

    def health(self, timeout: float = 2.0) -> dict:
        """Per-shard liveness: ``{"shards": {key: {...}}}``.

        A worker that is dead or does not answer within *timeout*
        reports every key it owns as ``alive: False`` — a recovering
        shard is visible, not invisible.
        """
        self._check_open()
        shards: dict[str, dict] = {}
        for name in sorted(self._handles):
            handle = self._handles[name]
            reply = None
            if handle.alive:
                try:
                    reply = self._request(handle, Verb.HEALTH, {}, timeout=timeout)
                except ShardUnavailableError:
                    reply = None
            if reply is not None:
                for key, info in reply.get("shards", {}).items():
                    shards[key] = {
                        "alive": bool(info.get("alive")),
                        "wal_depth": info.get("wal_depth"),
                        "respawns": handle.respawns,
                    }
            else:
                for key in sorted(handle.keys):
                    shards[key] = {
                        "alive": False,
                        "wal_depth": None,
                        "respawns": handle.respawns,
                    }
        return {"shards": shards}

    def workers(self) -> dict[str, dict]:
        """Live worker accounting: name → alive/respawns/keys."""
        with self._routing_lock:
            return {
                name: {
                    "alive": handle.alive,
                    "respawns": handle.respawns,
                    "keys": sorted(handle.keys),
                    "replica_keys": sorted(handle.replica_keys),
                }
                for name, handle in sorted(self._handles.items())
            }

    def __repr__(self) -> str:
        state = (
            "closed"
            if self._closed
            else f"{len(self._handles)} workers, {len(self.keys())} documents"
        )
        return f"ProcessCollection({self._path}, {state})"


def _serialize_transaction(transaction) -> str:
    """An update (builder, transaction object or XUpdate string) as the
    XUpdate text that crosses the pipe."""
    if isinstance(transaction, str):
        return transaction
    from repro.api.builders import compile_transaction
    from repro.xmlio.xupdate import transaction_to_string

    return transaction_to_string(compile_transaction(transaction), indent=False)
