"""Worker process: owns one or more warehouse shards, speaks frames.

``worker_main`` is the spawn target.  It opens a
:class:`~repro.api.session.Session` per assigned document key (WAL
replay — and therefore crash recovery — happens right there in
``Warehouse.open``), sends a READY frame, then serves request frames
until DRAIN or supervisor EOF.  Every request is answered by exactly
one OK or ERR frame carrying the request's id; a
:class:`~repro.errors.ReproError` becomes a structured ERR payload
(family, message, retryable) and the worker keeps serving — only
channel damage or DRAIN ends the loop.

Besides its *primary* shards (canonical ``root/key`` directories), a
worker can hold **replica** copies of shards whose primary lives on
another worker.  Replicas are stored under
``root/.replicas/<worker-name>/<key>`` — the leading dot keeps them
out of every key scan — and are populated exclusively through
SYNC_PUSH (a folded snapshot shipped from the primary); requests
address them with ``"replica": true`` in the payload.  A replica that
has not been synced yet answers with the retryable
:class:`~repro.errors.ShardUnavailableError` so the supervisor's
failover sweep moves on to the next candidate.

Workers run with ``observability=None`` sessions: the supervisor's
``cluster.*`` metrics are the cluster's instrument panel, and a child
process's registry would be invisible to the parent anyway.

Fault injection (tests only): when the supervisor enabled
``allow_faults``, an UPDATE payload may carry ``fault:
"before_commit" | "after_commit"`` and the worker SIGKILLs itself at
that point — before applying, or after the commit is durable but
before the acknowledgement.  This is how the kill -9 recovery
guarantees are exercised without racing an external killer against a
commit window.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import signal
from pathlib import Path

from repro.api.options import QueryOptions
from repro.api.session import Session, connect
from repro.errors import ReproError, ShardUnavailableError, WarehouseError
from repro.serve.cluster.wire import PipeTransport, Verb, WireError
from repro.xmlio.parse import fuzzy_from_string
from repro.xmlio.serialize import plain_to_string

__all__ = ["REPLICA_DIR", "SYNC_FILES", "worker_main"]

#: Dot-prefixed so replica copies never match the collection key scan.
REPLICA_DIR = ".replicas"
#: The folded-snapshot handoff set: everything a fresh `Warehouse.open`
#: needs after `compact()` (the WAL is empty post-fold and missing
#: audit entries are reconstructed on open).
SYNC_FILES = ("document.xml", "document.bin", "meta.json")


def _session_options(options: dict) -> dict:
    return {
        "snapshot_every": options.get("snapshot_every", 64),
        "wal_bytes_limit": options.get("wal_bytes_limit", 4 * 1024 * 1024),
        "compact_on_close": options.get("compact_on_close", True),
        "auto_simplify_factor": options.get("auto_simplify_factor"),
        "observability": None,
    }


def _kill_self() -> None:
    """Die exactly like an external ``kill -9``: no atexit, no flush."""
    os.kill(os.getpid(), signal.SIGKILL)


class _Worker:
    def __init__(self, root: Path, options: dict) -> None:
        self.root = root
        self.options = options
        self.name = str(options.get("worker_name", "w"))
        self.allow_faults = bool(options.get("allow_faults"))
        self.sessions: dict[str, Session] = {}
        self.replicas: dict[str, Session] = {}
        self.replica_root = root / REPLICA_DIR / self.name

    # ------------------------------------------------------------------
    # Shard lifecycle
    # ------------------------------------------------------------------

    def open_shard(self, key: str) -> None:
        if key in self.sessions:
            return
        self.sessions[key] = connect(
            self.root / key, **_session_options(self.options)
        )

    def close_shard(self, key: str) -> None:
        session = self.sessions.pop(key, None)
        if session is not None:
            # compact_on_close folds the WAL into a final snapshot: the
            # handoff artifact a migration target opens without replay.
            session.close()

    def close_all(self) -> None:
        for key in list(self.sessions):
            self.close_shard(key)
        for key in list(self.replicas):
            session = self.replicas.pop(key)
            session.close()

    def _session(self, key: str, replica: bool = False) -> Session:
        if replica:
            try:
                return self.replicas[key]
            except KeyError:
                # Retryable: the supervisor syncs replicas after spawn;
                # a reader that arrives first should fail over, not die.
                raise ShardUnavailableError(
                    f"worker {self.name} has no synced replica of {key!r}"
                ) from None
        try:
            return self.sessions[key]
        except KeyError:
            raise WarehouseError(
                f"worker does not own document {key!r}"
            ) from None

    # ------------------------------------------------------------------
    # Request handlers (each returns the OK payload)
    # ------------------------------------------------------------------

    def handle_query(self, payload: dict) -> dict:
        pattern = payload["pattern"]
        limit = payload.get("limit")
        replica = bool(payload.get("replica"))
        keys = payload.get("keys")
        wire_options = payload.get("options")
        # The supervisor ships the QueryOptions wire form verbatim; the
        # worker reconstructs the identical object, so per-shard
        # execution follows exactly the local-query semantics (same
        # branch-and-bound, same estimator seed).
        options = (
            QueryOptions.from_json(wire_options, require_pattern=False).replace(
                document=None
            )
            if wire_options is not None
            else None
        )
        if keys is None:
            keys = sorted(self.replicas if replica else self.sessions)
        else:
            keys = sorted(keys)
        if options is not None and options.is_estimate:
            seed = int(payload.get("seed", 0))
            estimates: dict[str, list[dict]] = {}
            for key in keys:
                session = self._session(key, replica)
                estimates[key] = [
                    {
                        "probability": estimate.probability,
                        "stderr": estimate.stderr,
                        "samples": estimate.samples,
                        "occurrences": estimate.occurrences,
                        "tree_xml": plain_to_string(estimate.tree, indent=False),
                    }
                    for estimate in session.query(
                        pattern, options=options
                    ).estimate(seed=seed)
                ]
            return {"rows": estimates, "estimate": True}
        rows: dict[str, list[dict]] = {}
        for key in keys:
            session = self._session(key, replica)
            if options is not None:
                results = session.query(pattern, options=options)
            else:
                results = session.query(pattern)
                if limit is not None:
                    results = results.limit(limit)
            rows[key] = [
                {
                    "probability": row.probability,
                    "tree_xml": plain_to_string(row.tree, indent=False),
                    "bindings": row.bindings(),
                }
                for row in results
            ]
        return {"rows": rows}

    def handle_update(self, payload: dict) -> dict:
        key = payload["key"]
        replica = bool(payload.get("replica"))
        session = self._session(key, replica)
        confidence = payload.get("confidence")
        fault = payload.get("fault") if self.allow_faults and not replica else None
        if fault == "before_commit":
            _kill_self()
        if "transactions" in payload:
            reports = session.update_many(
                payload["transactions"], confidence=confidence
            )
            if fault == "after_commit":
                _kill_self()
            return {
                "reports": [dataclasses.asdict(r) for r in reports],
                "sequence": session.warehouse.sequence,
            }
        report = session.update(payload["transaction"], confidence)
        if fault == "after_commit":
            # The commit is durable (WAL fsynced) — dying here is the
            # "acknowledged on disk, never acknowledged to the client"
            # window recovery must close.
            _kill_self()
        return {
            "report": dataclasses.asdict(report),
            "sequence": session.warehouse.sequence,
        }

    def handle_create(self, payload: dict) -> dict:
        key = payload["key"]
        if key in self.sessions:
            raise WarehouseError(f"document {key!r} already exists")
        document_xml = payload.get("document_xml")
        self.sessions[key] = connect(
            self.root / key,
            create=True,
            root=payload.get("root"),
            document=(
                fuzzy_from_string(document_xml) if document_xml is not None else None
            ),
            **_session_options(self.options),
        )
        return {"key": key}

    def handle_stats(self, payload: dict) -> dict:
        return {
            "documents": {
                key: self.sessions[key].stats() for key in sorted(self.sessions)
            }
        }

    def handle_health(self, payload: dict) -> dict:
        return {
            "shards": {
                key: self.sessions[key].warehouse.health()
                for key in sorted(self.sessions)
            }
        }

    def handle_assign(self, payload: dict) -> dict:
        self.open_shard(payload["key"])
        return {"key": payload["key"]}

    def handle_release(self, payload: dict) -> dict:
        key = payload["key"]
        if payload.get("replica"):
            session = self.replicas.pop(key, None)
            if session is not None:
                session.close()
            shutil.rmtree(self.replica_root / key, ignore_errors=True)
        else:
            self.close_shard(key)
        return {"key": key}

    def handle_sync_pull(self, payload: dict) -> dict:
        """Fold the primary shard's WAL and ship the snapshot files.

        The supervisor holds the key's write lock across the pull/push
        pair and this process is single-threaded, so nothing can commit
        between the compact and the file reads.
        """
        key = payload["key"]
        session = self._session(key)
        summary = session.compact()
        directory = self.root / key
        files: dict[str, bytes] = {}
        for name in SYNC_FILES:
            path = directory / name
            if path.exists():
                files[name] = path.read_bytes()
        return {"key": key, "sequence": summary["sequence"], "files": files}

    def handle_sync_push(self, payload: dict) -> dict:
        """Replace this worker's replica of *key* with the pulled files."""
        key = payload["key"]
        files = payload.get("files") or {}
        for name in files:
            if name not in SYNC_FILES:
                raise WarehouseError(f"unexpected sync file {name!r}")
        session = self.replicas.pop(key, None)
        if session is not None:
            session.close()
        directory = self.replica_root / key
        if directory.exists():
            shutil.rmtree(directory)
        directory.mkdir(parents=True)
        for name, data in files.items():
            (directory / name).write_bytes(data)
        session = connect(directory, **_session_options(self.options))
        self.replicas[key] = session
        return {"key": key, "sequence": session.warehouse.sequence}


_HANDLERS = {
    Verb.QUERY: _Worker.handle_query,
    Verb.UPDATE: _Worker.handle_update,
    Verb.CREATE: _Worker.handle_create,
    Verb.STATS: _Worker.handle_stats,
    Verb.HEALTH: _Worker.handle_health,
    Verb.ASSIGN: _Worker.handle_assign,
    Verb.RELEASE: _Worker.handle_release,
    Verb.SYNC_PULL: _Worker.handle_sync_pull,
    Verb.SYNC_PUSH: _Worker.handle_sync_push,
}


def worker_main(conn, root: str, keys: list[str], options: dict) -> None:
    """Process entry point: open shards, announce READY, serve frames."""
    # The supervisor owns interactive shutdown; a Ctrl-C aimed at it
    # must not tear workers mid-commit — they exit on DRAIN or EOF.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    transport = PipeTransport(conn)
    worker = _Worker(Path(root), dict(options))
    try:
        for key in keys:
            worker.open_shard(key)
    except BaseException as exc:
        transport.send(
            Verb.ERR,
            0,
            {"family": type(exc).__name__, "message": str(exc), "retryable": False},
        )
        return
    transport.send(Verb.READY, 0, {"pid": os.getpid(), "keys": sorted(worker.sessions)})
    try:
        while True:
            try:
                verb, request_id, payload = transport.recv()
            except (EOFError, OSError):
                return  # supervisor is gone; fall through to cleanup
            if verb is Verb.DRAIN:
                worker.close_all()
                transport.send(Verb.OK, request_id, {"drained": True})
                return
            handler = _HANDLERS.get(verb)
            try:
                if handler is None:
                    raise WireError(f"unexpected request verb {verb!r}")
                result = handler(worker, payload)
            except ReproError as exc:
                transport.send(
                    Verb.ERR,
                    request_id,
                    {
                        "family": type(exc).__name__,
                        "message": str(exc),
                        "retryable": bool(getattr(exc, "retryable", False)),
                    },
                )
            else:
                transport.send(Verb.OK, request_id, result)
    finally:
        worker.close_all()
