"""Process-per-shard serving: supervisor, workers, ring, wire protocol.

The package behind ``connect_collection(..., mode="process")`` and
``repro serve --shard-processes N``: a supervisor process routes
document keys over a consistent-hash ring to worker processes, each
owning its shards' warehouses and recovering from its own WAL on crash.
"""

from repro.serve.cluster.ring import HashRing
from repro.serve.cluster.supervisor import (
    ClusterResultSet,
    ClusterRow,
    ProcessCollection,
)
from repro.serve.cluster.wire import (
    PipeTransport,
    SocketTransport,
    Verb,
    WireError,
    decode_frame,
    encode_frame,
)
from repro.serve.cluster.worker import worker_main

__all__ = [
    "ClusterResultSet",
    "ClusterRow",
    "HashRing",
    "PipeTransport",
    "ProcessCollection",
    "SocketTransport",
    "Verb",
    "WireError",
    "decode_frame",
    "encode_frame",
    "worker_main",
]
