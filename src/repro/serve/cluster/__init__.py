"""Process-per-shard serving: supervisor, workers, ring, wire protocol.

The package behind ``connect_collection(..., mode="process")`` and
``repro serve --shard-processes N``: a supervisor process routes
document keys over a consistent-hash ring to worker processes, each
owning its shards' warehouses and recovering from its own WAL on crash.
With ``replication_factor=R`` every document also lives on R−1 replica
workers: writes are acknowledged by the primary and written through,
reads fail over between copies with budgeted retries (:mod:`.retry`),
and :mod:`.chaos` provides the seeded fault harness that proves it.
"""

from repro.serve.cluster.chaos import (
    FAULT_KINDS,
    ChaosMonkey,
    ChaosTransport,
    Fault,
    FaultPlan,
    kill_worker,
)
from repro.serve.cluster.retry import (
    DEFAULT_POLICY,
    RetryPolicy,
    call_with_retry,
    is_retryable,
)
from repro.serve.cluster.ring import HashRing
from repro.serve.cluster.supervisor import (
    ClusterResultSet,
    ClusterRow,
    ProcessCollection,
)
from repro.serve.cluster.wire import (
    FRAME_FORMAT_VERSION,
    PipeTransport,
    SocketTransport,
    Verb,
    WireError,
    decode_frame,
    encode_frame,
)
from repro.serve.cluster.worker import worker_main

__all__ = [
    "ChaosMonkey",
    "ChaosTransport",
    "ClusterResultSet",
    "ClusterRow",
    "DEFAULT_POLICY",
    "FAULT_KINDS",
    "FRAME_FORMAT_VERSION",
    "Fault",
    "FaultPlan",
    "HashRing",
    "PipeTransport",
    "ProcessCollection",
    "RetryPolicy",
    "SocketTransport",
    "Verb",
    "WireError",
    "call_with_retry",
    "decode_frame",
    "encode_frame",
    "is_retryable",
    "kill_worker",
    "worker_main",
]
