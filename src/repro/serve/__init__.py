"""The concurrent serving layer: thread-safe sessions at scale.

The paper's warehouse is meant to be queried and updated continuously
by many imprecise modules at once (slides 14–19); this package is the
piece that puts threads on top of the storage and session layers:

* one **warehouse** is already safe to share across threads in a
  single-writer / multi-reader shape — writers serialize on the
  handle's write lock while readers pin a document generation and run
  lock-free on the frozen tree (see :mod:`repro.warehouse.warehouse`
  and :mod:`repro.engine` for the locking contracts);
* a :class:`Collection` (:func:`connect_collection`) serves **many
  documents** as one store: one warehouse per document key, updates
  routed by key, queries fanned out across shards on a bounded
  :class:`SessionPool` and merged lazily in deterministic
  (shard, row) order with ``limit(n)`` short-circuiting the fan-out;
* ``connect_collection(..., mode="process")`` swaps the thread pool
  for **worker processes** (:class:`ProcessCollection`): a supervisor
  routes document keys over a consistent-hash ring to processes that
  each own their shards' warehouses, recover from their own WAL on
  crash and are respawned automatically — reader throughput scales
  past the GIL (see :mod:`repro.serve.cluster`).

::

    import repro

    with repro.connect_collection("people", create=True) as collection:
        collection.create_document("alice", root="person")
        collection.create_document("bob", root="person")
        collection.update("alice", some_transaction, confidence=0.9)
        for row in collection.query("//email").limit(10):
            print(row.document, row.probability, row.tree.canonical())
"""

from repro.serve.cluster import (
    ChaosMonkey,
    ClusterResultSet,
    ClusterRow,
    FaultPlan,
    HashRing,
    ProcessCollection,
    RetryPolicy,
)
from repro.serve.collection import (
    Collection,
    CollectionResultSet,
    ShardRow,
    connect_collection,
)
from repro.serve.pool import SessionPool, default_workers

__all__ = [
    "ChaosMonkey",
    "Collection",
    "CollectionResultSet",
    "ClusterResultSet",
    "ClusterRow",
    "FaultPlan",
    "HashRing",
    "ProcessCollection",
    "RetryPolicy",
    "SessionPool",
    "ShardRow",
    "connect_collection",
    "default_workers",
]
