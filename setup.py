"""Legacy setup shim.

The reproduction environment is offline and lacks the ``wheel``
package, so ``pip install -e .`` must use the legacy ``setup.py
develop`` path instead of PEP 517 build isolation.  All real metadata
lives in pyproject.toml; this file only exists to enable that path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
