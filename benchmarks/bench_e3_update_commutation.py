"""E3 — Update commutation (paper, slide 14).

Claim: applying a probabilistic update directly to the fuzzy tree
commutes with the possible-worlds update semantics, for insertions and
deletions at any confidence.  The bench closes the diagram on random
instances across confidences and times insertion-only vs deletion-only
transactions (slide 14: insertions are cheap, deletions are the
problematic case).
"""

from __future__ import annotations

import random

import pytest

from repro import (
    DeleteOperation,
    InsertOperation,
    UpdateTransaction,
    to_possible_worlds,
    update_possible_worlds,
)
from repro.core.update import apply_update
from repro.trees import RandomTreeConfig, tree
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree, random_query_for


def instance(seed: int):
    rng = random.Random(seed)
    config = FuzzyWorkloadConfig(
        tree=RandomTreeConfig(max_nodes=16, max_children=3, max_depth=4),
        n_events=3,
        condition_probability=0.5,
    )
    doc = random_fuzzy_tree(rng, config)
    pattern = random_query_for(
        rng, doc.root, max_nodes=3, join_probability=0.0, wildcard_probability=0.0
    )
    return rng, doc, pattern


def make_tx(rng, pattern, kind: str, confidence: float) -> UpdateTransaction | None:
    nodes = pattern.nodes()
    if kind == "insert":
        anchors = [n for n in nodes if n.value is None]
        if not anchors:
            return None
        anchor = rng.choice(anchors)
        anchor.variable = anchor.variable or "a"
        return UpdateTransaction(
            pattern, [InsertOperation(anchor.variable, tree("NEW", tree("leaf", "v")))], confidence
        )
    targets = [n for n in nodes if n.parent is not None]
    if not targets:
        return None
    target = rng.choice(targets)
    target.variable = target.variable or "d"
    return UpdateTransaction(pattern, [DeleteOperation(target.variable)], confidence)


@pytest.mark.parametrize("confidence", [0.5, 0.9, 1.0])
@pytest.mark.parametrize("kind", ["insert", "delete"])
def test_update_commutation(report, benchmark, kind, confidence):
    checked = 0
    copies = 0
    for seed in range(12):
        rng, doc, pattern = instance(seed)
        tx = make_tx(rng, pattern, kind, confidence)
        if tx is None:
            continue
        truth = update_possible_worlds(to_possible_worlds(doc), tx)
        work = doc.clone()
        update_report = apply_update(work, tx)
        assert to_possible_worlds(work).same_distribution(truth, 1e-9)
        checked += 1
        copies += update_report.survivor_copies
    assert checked > 0
    report.table(
        f"E3a  {kind} @ confidence {confidence} (diagram closes on {checked} instances)",
        ["kind", "confidence", "instances", "survivor copies total"],
        [[kind, confidence, checked, copies]],
    )

    # Time one representative application on a fresh clone each round.
    rng, doc, pattern = instance(0)
    tx = make_tx(rng, pattern, kind, confidence)
    if tx is not None:
        benchmark(lambda: apply_update(doc.clone(), tx))


def test_insert_cheaper_than_delete(report, benchmark):
    """Slide 14's asymmetry: survivor copies only appear on deletions."""

    def sweep():
        totals = {"insert": [0, 0], "delete": [0, 0]}  # copies, node growth
        for seed in range(20):
            rng, doc, pattern = instance(seed + 100)
            for kind in ("insert", "delete"):
                tx = make_tx(rng, pattern, kind, 0.8)
                if tx is None:
                    continue
                work = doc.clone()
                before = work.size()
                update_report = apply_update(work, tx)
                totals[kind][0] += update_report.survivor_copies
                totals[kind][1] += max(work.size() - before, 0)
        return totals

    totals = benchmark.pedantic(sweep, rounds=1)
    insert_copies, insert_nodes = totals["insert"]
    delete_copies, delete_nodes = totals["delete"]
    report.table(
        "E3b  insertion vs deletion cost (20 random instances, confidence 0.8)",
        ["operation", "survivor copies", "net node growth"],
        [
            ["insert", insert_copies, insert_nodes],
            ["delete", delete_copies, delete_nodes],
        ],
    )
    assert insert_copies == 0  # insertions never copy subtrees
