"""CI benchmark-trajectory gate.

Every benchmark that writes ``benchmarks/out/BENCH_*.json`` embeds a
``trajectory`` list — the headline medians of that experiment, each a
record ``{"id", "value", "direction"}`` where *direction* says which
way is better (``"lower"`` for latencies, ``"higher"`` for
throughputs).  The repository commits full-mode baselines; CI runs the
quick modes (same per-point workload, fewer sizes/repeats) and this
script compares every id present in **both** files:

* ``direction: lower`` regresses when ``current > baseline * slack``;
* ``direction: higher`` regresses when ``current < baseline / slack``.

The default slack is wide (2.5×) because shared CI runners are noisy
and quick modes use fewer repeats of the best-of-N estimator — the
gate is a tripwire for order-of-magnitude regressions, not a
microbenchmark diff.  Ids only in the baseline (full-mode-only sizes)
are skipped; ids only in the current run (new metrics) pass with a
note.

Usage::

    python benchmarks/check_trajectory.py \
        --baseline-dir <dir with committed BENCH_*.json> \
        --current-dir benchmarks/out [--slack 2.5]

Exits 1 when any compared id regressed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["compare_payloads", "main"]


def _load_trajectories(path: Path) -> dict[str, dict]:
    """id -> record for one BENCH_*.json file ({} when absent/legacy)."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    records = payload.get("trajectory")
    if not isinstance(records, list):
        return {}
    out = {}
    for record in records:
        if (
            isinstance(record, dict)
            and isinstance(record.get("id"), str)
            and isinstance(record.get("value"), (int, float))
            and record.get("direction") in ("lower", "higher")
        ):
            out[record["id"]] = record
    return out


def compare_payloads(
    baseline: dict[str, dict], current: dict[str, dict], slack: float
) -> tuple[list[str], list[str]]:
    """(report lines, regression lines) for one experiment's records."""
    lines: list[str] = []
    regressions: list[str] = []
    for id_, record in sorted(current.items()):
        base = baseline.get(id_)
        if base is None:
            lines.append(f"  NEW      {id_}: {record['value']:.4g} (no baseline)")
            continue
        value, reference = record["value"], base["value"]
        if record["direction"] == "lower":
            bad = value > reference * slack
            headroom = value / reference if reference else float("inf")
        else:
            bad = value < reference / slack
            headroom = reference / value if value else float("inf")
        verdict = "REGRESSED" if bad else "ok"
        lines.append(
            f"  {verdict:9s}{id_}: {value:.4g} vs baseline {reference:.4g} "
            f"({record['direction']} is better, x{headroom:.2f} of it, "
            f"slack {slack}x)"
        )
        if bad:
            regressions.append(lines[-1].strip())
    for id_ in sorted(set(baseline) - set(current)):
        lines.append(f"  skipped  {id_} (not measured in this run)")
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        required=True,
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        required=True,
        help="directory holding this run's BENCH_*.json outputs",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=2.5,
        help="tolerated regression factor (default 2.5: wide, for shared runners)",
    )
    args = parser.parse_args(argv)

    current_files = sorted(args.current_dir.glob("BENCH_*.json"))
    if not current_files:
        print(f"error: no BENCH_*.json under {args.current_dir}", file=sys.stderr)
        return 1
    all_regressions: list[str] = []
    compared_any = False
    for current_path in current_files:
        baseline_path = args.baseline_dir / current_path.name
        baseline = _load_trajectories(baseline_path)
        current = _load_trajectories(current_path)
        if not current:
            print(f"{current_path.name}: no trajectory entries (skipped)")
            continue
        print(f"{current_path.name}:")
        lines, regressions = compare_payloads(baseline, current, args.slack)
        compared_any = compared_any or any(
            " ok" in line or "REGRESSED" in line for line in lines
        )
        for line in lines:
            print(line)
        all_regressions.extend(regressions)
    if not compared_any:
        print(
            "error: nothing compared — baselines missing trajectory entries?",
            file=sys.stderr,
        )
        return 1
    if all_regressions:
        print(f"\n{len(all_regressions)} benchmark regression(s):", file=sys.stderr)
        for line in all_regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nbenchmark trajectory ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
