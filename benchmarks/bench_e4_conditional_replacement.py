"""E4 — The conditional-replacement example (paper, slide 15).

The paper's only fully worked update: on the document
``A { B[w1], C[w2] }`` (w1=0.8, w2=0.7), *replace C by D if B is
present*, with confidence 0.9.  The slide gives the exact output fuzzy
tree::

    A { B[w1],  C[¬w1, w2],  C[w1, w2, ¬w3],  D[w1, w2, w3] }
    events: w1=0.8  w2=0.7  w3=0.9

This bench regenerates that figure literally and verifies the
commutation against the possible-worlds semantics.
"""

from __future__ import annotations

import pytest

from repro import (
    Condition,
    DeleteOperation,
    EventTable,
    FuzzyNode,
    FuzzyTree,
    InsertOperation,
    UpdateTransaction,
    to_possible_worlds,
    update_possible_worlds,
)
from repro.core.update import apply_update
from repro.tpwj.parser import parse_pattern
from repro.trees import tree

from conftest import fmt


def document() -> FuzzyTree:
    events = EventTable({"w1": 0.8, "w2": 0.7})
    root = FuzzyNode(
        "A",
        children=[
            FuzzyNode("B", condition=Condition.of("w1")),
            FuzzyNode("C", condition=Condition.of("w2")),
        ],
    )
    return FuzzyTree(root, events)


def transaction() -> UpdateTransaction:
    return UpdateTransaction(
        parse_pattern("/A[$a] { B, C[$c] }"),
        [DeleteOperation("c"), InsertOperation("a", tree("D"))],
        0.9,
    )


def test_slide15_figure(report, benchmark):
    doc = benchmark.pedantic(
        lambda: (d := document(), apply_update(d, transaction()), d)[-1],
        rounds=20,
    )
    rows = [
        [node.label, node.condition.pretty() or "⊤"]
        for node in doc.iter_nodes()
        if node is not doc.root
    ]
    rows.sort()
    report.table(
        "E4a  slide-15 output fuzzy tree (paper: B[w1], C[¬w1,w2], C[w1,w2,¬w3], D[w1,w2,w3])",
        ["node", "condition"],
        rows,
    )
    report.table(
        "E4b  slide-15 output event table (paper: w1=0.8, w2=0.7, w3=0.9)",
        ["event", "probability"],
        [[name, fmt(p)] for name, p in doc.events.items()],
    )
    conditions = {f"{node.label}:{node.condition}" for node in doc.iter_nodes()}
    assert conditions == {
        "A:true",
        "B:w1",
        "C:!w1 w2",
        "C:w1 w2 !w3",
        "D:w1 w2 w3",
    }
    assert doc.events.probability("w3") == pytest.approx(0.9)


def test_slide15_commutes(report, benchmark):
    def run():
        doc = document()
        truth = update_possible_worlds(to_possible_worlds(doc), transaction())
        apply_update(doc, transaction())
        return to_possible_worlds(doc), truth

    got, truth = benchmark.pedantic(run, rounds=1)
    assert got.same_distribution(truth, 1e-12)
    report.table(
        "E4c  slide-15 result distribution (both evaluation paths agree)",
        ["world", "probability"],
        [[w.tree.canonical(), fmt(w.probability)] for w in got],
    )
