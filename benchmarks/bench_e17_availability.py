"""E17 — availability under worker kills with R-way replication.

PR 9 made the process cluster fault tolerant: every document now lives
on ``replication_factor`` ring successors, writes flow through the
primary and replicate to the rest, and reads fail over — primary, then
fresh replicas, then stale ones — under a retry policy with an absolute
deadline budget.  The claim worth pricing is the *availability
contract*: with ``replication_factor=2``, killing any single worker
during sustained mixed load must produce **zero client-visible read
failures** and **zero lost acknowledged writes**, at a bounded latency
cost.  This experiment measures exactly that:

* **E17a — baseline.**  Reader threads plus one writer against a
  healthy R=2 cluster: aggregate read qps and read latency quantiles
  with nothing failing.  This is the denominator for the chaos phase's
  p99 inflation.

* **E17b — chaos.**  The same mixed load while the seeded
  ``FaultPlan.kills`` schedule SIGKILLs one worker at a time — the
  next kill only fires after the previous victim respawned and every
  replica resynced (the one-failure-at-a-time regime R=2 is designed
  for).  Every read during the phase must succeed; every write the
  client saw acknowledged (directly or after in-budget retries) must
  be readable once the dust settles.  The kill count, failed reads,
  lost writes, and the chaos-vs-baseline p99 ratio are all reported;
  the failure counters are asserted to be zero *on every host* — they
  are correctness tripwires, not timings.

Runs both ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_e17_availability.py \
        -x -q -o python_files="bench_*.py"
    PYTHONPATH=src python benchmarks/bench_e17_availability.py [--quick]

The script form needs no pytest plugins (CI smoke uses ``--quick``)
and always writes machine-readable results — including the
``trajectory`` entries the CI benchmark-trajectory gate compares — to
``benchmarks/out/BENCH_E17.json``.  Latency/throughput trajectory
entries are emitted only on multi-core hosts (on one core they price
the scheduler, not the failover path); the ``failed_reads`` and
``lost_writes`` tripwires are emitted everywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import threading
import time
from pathlib import Path

try:
    from conftest import fmt
except ImportError:  # script mode: run outside pytest's rootdir sys.path
    def fmt(value: float, digits: int = 4) -> str:
        return f"{value:.{digits}g}"

from repro.serve import connect_collection
from repro.serve.cluster import (
    FaultPlan,
    ChaosMonkey,
    ProcessCollection,
    call_with_retry,
)
import repro

OUT_DIR = Path(__file__).parent / "out"
JSON_PATH = OUT_DIR / "BENCH_E17.json"

N_DOCS = 6
N_NODES = 300
WORKERS = 3
REPLICATION = 2
READERS = 4
TOP_K = 10
PLAN_SEED = 20060328  # the paper's publication year+month+day
KILLS = 3
QUICK_KILLS = 1
BASELINE_S = 3.0
QUICK_BASELINE_S = 1.5
WRITE_GAP_S = 0.02
WRITE_BUDGET_S = 60.0
HEAL_TIMEOUT_S = 120.0
KILL_DWELL_S = 0.75  # mixed load runs this long after each heal


def _max_p99_inflation() -> float:
    # Acceptance ceiling: chaos-phase read p99 over the baseline p99,
    # asserted only on hosts with >= 2 cores (one core serializes the
    # respawn against the readers and prices the scheduler instead).
    return float(os.environ.get("E17_MAX_P99_INFLATION", "50.0"))


def _build_collection(base: Path):
    """N_DOCS person documents plus the query mix the readers run."""
    path = base / "avail"
    shutil.rmtree(path, ignore_errors=True)
    keys = [f"person{i}" for i in range(N_DOCS)]
    with connect_collection(path, create=True, observability=None) as seed:
        rng = random.Random(11)
        for key in keys:
            seed.create_document(key, root="person")
            update = repro.update(
                repro.pattern("person", variable="p", anchored=True)
            )
            for j in range(max(4, N_NODES // 75)):
                update = update.insert(
                    "p", repro.tree("email", f"{key}.{j}@x")
                )
            seed.update(key, update.confidence(0.5 + rng.random() / 2))
    patterns = ["//email", "/person { email [$e] }"]
    return path, keys, patterns


def _insert_email(value: str):
    return (
        repro.update(repro.pattern("person", variable="p", anchored=True))
        .insert("p", repro.tree("email", value))
        .confidence(0.9)
    )


def _wait_healthy(cluster, deadline_s: float = HEAL_TIMEOUT_S) -> None:
    """Block until every worker is alive again and no replica is stale."""
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline_s:
        if all(info["alive"] for info in cluster.workers().values()):
            try:
                cluster.await_replication(deadline_s)
                return
            except Exception:
                pass
        time.sleep(0.05)
    raise AssertionError("cluster never healed within the timeout")


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _mixed_load(cluster, keys, patterns, *, monkey=None, duration_s=0.0):
    """One load phase: READERS reader threads + 1 writer, and either a
    fixed duration (baseline) or a kill schedule (chaos — the phase
    ends when the last kill has been applied *and healed*).

    Returns the phase record: read counts/latencies, every acknowledged
    write value, and the failure counters the contract is about.
    """
    stop = threading.Event()
    latencies: list[list[float]] = [[] for _ in range(READERS)]
    read_errors: list = []
    acked: list[str] = []
    write_errors: list = []
    phase = "chaos" if monkey is not None else "baseline"

    def reader(slot: int) -> None:
        local = latencies[slot]
        i = slot
        while not stop.is_set():
            pattern = patterns[i % len(patterns)]
            key = keys[i % len(keys)]
            t0 = time.perf_counter()
            try:
                cluster.query(pattern, keys=[key]).limit(TOP_K).all()
            except Exception as exc:  # the contract says: never
                read_errors.append(repr(exc))
            else:
                local.append(time.perf_counter() - t0)
            i += 1

    def writer() -> None:
        rng = random.Random(PLAN_SEED)
        i = 0
        while not stop.is_set():
            value = f"{phase}.{i}@x"

            def write() -> None:
                cluster.update(keys[0], _insert_email(value))

            try:
                call_with_retry(
                    write,
                    deadline=time.monotonic() + WRITE_BUDGET_S,
                    rng=rng,
                )
            except Exception as exc:  # not acked: the client saw it fail
                write_errors.append(repr(exc))
            else:
                acked.append(value)
            i += 1
            stop.wait(WRITE_GAP_S)

    threads = [
        threading.Thread(target=reader, args=(slot,)) for slot in range(READERS)
    ]
    threads.append(threading.Thread(target=writer))
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    kills = 0
    try:
        if monkey is None:
            time.sleep(duration_s)
        else:
            while True:
                fault = monkey.apply_next()
                if fault is None:
                    break
                kills += 1
                victim = monkey.applied[-1][1]
                before = cluster.workers()[victim]["respawns"]
                # The SIGKILL takes a monitor tick to be *observed*; a
                # naive health poll right after the kill sees the stale
                # "alive" flag and declares victory before the failover
                # path ever ran.  Wait for the respawn counter first.
                t0 = time.monotonic()
                while time.monotonic() - t0 < HEAL_TIMEOUT_S:
                    if cluster.workers()[victim]["respawns"] > before:
                        break
                    time.sleep(0.02)
                else:
                    raise AssertionError(
                        f"killed worker {victim} was never respawned"
                    )
                _wait_healthy(cluster)
                time.sleep(KILL_DWELL_S)  # load against the healed cluster
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    wall = time.perf_counter() - start

    flat = sorted(s for local in latencies for s in local)
    return {
        "phase": phase,
        "wall_s": wall,
        "kills": kills,
        "reads": len(flat),
        "read_qps": len(flat) / wall if wall else 0.0,
        "read_p50_ms": _quantile(flat, 0.50) * 1e3,
        "read_p99_ms": _quantile(flat, 0.99) * 1e3,
        "failed_reads": len(read_errors),
        "read_errors": read_errors[:5],
        "writes_acked": len(acked),
        "failed_writes": len(write_errors),
        "acked_values": acked,
    }


def _verify_acked(cluster, key: str, acked: list[str]) -> int:
    """How many acknowledged write values are *not* readable after the
    cluster healed — the lost-write counter (contract: zero)."""
    rows = cluster.query("/person { email [$e] }", keys=[key]).all()
    present = {row.bindings()["e"] for row in rows}
    return sum(1 for value in acked if value not in present)


def run_availability(base: Path, quick: bool):
    """E17 rows: [phase, kills, reads, read qps, p50 ms, p99 ms,
    failed reads, acked writes, lost writes]."""
    path, keys, patterns = _build_collection(base)
    kills = QUICK_KILLS if quick else KILLS
    duration = QUICK_BASELINE_S if quick else BASELINE_S
    with ProcessCollection(
        path,
        shard_processes=WORKERS,
        replication_factor=REPLICATION,
        observability=None,
        attempt_timeout=2.0,
        query_deadline=30.0,
    ) as cluster:
        cluster.await_replication(HEAL_TIMEOUT_S)
        baseline = _mixed_load(cluster, keys, patterns, duration_s=duration)
        _wait_healthy(cluster)
        baseline["lost_writes"] = _verify_acked(
            cluster, keys[0], baseline.pop("acked_values")
        )

        monkey = ChaosMonkey(cluster, FaultPlan.kills(PLAN_SEED, length=kills))
        chaos = _mixed_load(cluster, keys, patterns, monkey=monkey)
        _wait_healthy(cluster)
        chaos["lost_writes"] = _verify_acked(
            cluster, keys[0], chaos.pop("acked_values")
        )

    inflation = (
        chaos["read_p99_ms"] / baseline["read_p99_ms"]
        if baseline["read_p99_ms"]
        else float("inf")
    )
    table_rows = [
        [
            record["phase"],
            record["kills"],
            record["reads"],
            fmt(record["read_qps"]),
            fmt(record["read_p50_ms"]),
            fmt(record["read_p99_ms"]),
            record["failed_reads"],
            record["writes_acked"],
            record["lost_writes"],
        ]
        for record in (baseline, chaos)
    ]
    return table_rows, {
        "baseline": baseline,
        "chaos": chaos,
        "p99_inflation": inflation,
    }


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

_E17_HEADERS = [
    "phase",
    "kills",
    "reads",
    "read qps",
    "p50 ms",
    "p99 ms",
    "failed reads",
    "acked writes",
    "lost writes",
]


def _trajectory(results: dict) -> list[dict]:
    """The numbers the CI trajectory gate compares across commits.

    The failure counters are emitted on *every* host — they gate the
    availability contract itself, and a zero baseline tolerates only
    zero (``0 > 0 * slack`` never fires, any regression does).  The
    latency/throughput numbers are multi-core-only, as in E16.
    """
    chaos = results["chaos"]
    entries = [
        {"id": "e17.failed_reads", "value": chaos["failed_reads"], "direction": "lower"},
        {"id": "e17.lost_writes", "value": chaos["lost_writes"], "direction": "lower"},
    ]
    if (os.cpu_count() or 1) >= 2:
        entries.extend(
            [
                {
                    "id": "e17.read_p99_ms.baseline",
                    "value": results["baseline"]["read_p99_ms"],
                    "direction": "lower",
                },
                {
                    "id": "e17.read_p99_ms.chaos",
                    "value": chaos["read_p99_ms"],
                    "direction": "lower",
                },
                {
                    "id": "e17.read_qps.chaos",
                    "value": chaos["read_qps"],
                    "direction": "higher",
                },
            ]
        )
    return entries


def write_json(payload: dict) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _run_all(base: Path, quick: bool):
    table_rows, results = run_availability(base, quick)
    payload = {
        "experiment": "E17",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "workers": WORKERS,
        "replication_factor": REPLICATION,
        "plan_seed": PLAN_SEED,
        "baseline": results["baseline"],
        "chaos": results["chaos"],
        "p99_inflation": results["p99_inflation"],
        "trajectory": _trajectory(results),
    }
    return table_rows, payload


def _report(report_table, table_rows, payload) -> None:
    report_table(
        f"E17  availability: {WORKERS} workers at R={REPLICATION}, "
        f"{payload['chaos']['kills']} kill(s) under mixed load "
        f"(p99 inflation {fmt(payload['p99_inflation'], 3)}x)",
        _E17_HEADERS,
        table_rows,
    )


def _assert_contract(payload: dict) -> None:
    chaos = payload["chaos"]
    assert chaos["failed_reads"] == 0, (
        f"{chaos['failed_reads']} reads failed during the kill schedule "
        f"(sample: {chaos['read_errors']}) — R={REPLICATION} failover "
        f"must keep every read answerable with one worker down"
    )
    assert chaos["lost_writes"] == 0, (
        f"{chaos['lost_writes']} acknowledged writes were unreadable "
        f"after the cluster healed — acked means durable"
    )
    assert payload["baseline"]["failed_reads"] == 0
    assert payload["baseline"]["lost_writes"] == 0
    assert chaos["kills"] >= 1, "the chaos phase never applied a kill"


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------


def test_availability(report, tmp_path, benchmark):
    table_rows, payload = benchmark.pedantic(
        lambda: _run_all(tmp_path, quick=False), rounds=1
    )
    _report(report.table, table_rows, payload)
    write_json(payload)
    _assert_contract(payload)
    if (os.cpu_count() or 1) >= 2:
        assert payload["p99_inflation"] <= _max_p99_inflation(), (
            f"chaos-phase read p99 inflated {payload['p99_inflation']:.1f}x "
            f"over baseline, above the {_max_p99_inflation()}x ceiling "
            f"(cpu_count={os.cpu_count()})"
        )


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------


def _print_table(title: str, headers, rows) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(title)
    print("-" * len(title))
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


def main(argv=None) -> int:
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one kill, shorter baseline (CI smoke; contract still asserted)",
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory() as tmp:
        table_rows, payload = _run_all(Path(tmp), quick=args.quick)

    def table(title, headers, rows):
        _print_table(title, headers, rows)

    _report(table, table_rows, payload)
    write_json(payload)
    _assert_contract(payload)
    print(f"machine-readable results written to {JSON_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
