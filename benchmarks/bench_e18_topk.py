"""E18 — probability-aware top-k and anytime answers (2.0 surface).

Two workloads, one per tentpole claim of the QueryOptions redesign:

* **Top-k branch-and-bound** — a directory of persons where a handful
  carry high confidence and the long tail is unlikely, each person
  fattened with per-event email children.  ``order_by_probability()
  .limit(5)`` admits through the threshold heap and prunes partial
  matches whose condition bound cannot beat the current floor; the
  baseline enumerates every row and sorts.  Same rows, a fraction of
  the join work.
* **Anytime Monte-Carlo** — an adversarial event graph: every person
  answers identically (one answer group) and layer updates attach a
  shared event to every person in a *group*, with each person in two
  groups.  The overlapping bipartite blocks refuse to factor into
  independent components, so exact Shannon expansion blows up while
  the sampler's per-sample cost stays linear in the DNF.  ``estimate
  (epsilon=, deadline_ms=)`` returns a ±epsilon answer inside a
  budget the exact path exceeds by an order of magnitude.

Script mode (no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_e18_topk.py [--quick]

measures both workloads and writes machine-readable medians —
including the ``trajectory`` entries the CI benchmark-trajectory gate
compares — to ``benchmarks/out/BENCH_E18.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import time
from pathlib import Path

import pytest

import repro
from repro import connect
from repro.analysis import counters
from repro.tpwj import parse_pattern

try:
    from conftest import fmt
except ImportError:  # script mode: run outside pytest's rootdir sys.path
    def fmt(value: float, digits: int = 4) -> str:
        return f"{value:.{digits}g}"

OUT_DIR = Path(__file__).parent / "out"
JSON_PATH = OUT_DIR / "BENCH_E18.json"

# Top-k workload: nodes = persons * (2 + EMAILS) + 1 (directory root).
SIZES = (320, 640, 1200)
QUICK_SIZES = (320,)
EMAILS = 6
HOT_PERSONS = 6
TOPK = 5
TOPK_PATTERN = "//person { name [$n], email [$e] }"

# Anytime workload: one answer group over overlapping bipartite blocks.
ANYTIME_PERSONS = 34
ANYTIME_LAYERS = 20
ANYTIME_GROUPS = 16
ANYTIME_PATTERN = "//person { name [$n], flag [$f] }"
DEADLINE_MS = 25
EPSILON = 0.05


def build_topk_warehouse(path, n_nodes: int, seed: int = 18):
    """A top-k-adversarial directory: few hot persons, a cheap long tail.

    The branch-and-bound join prices the hot persons first into the
    admission heap; every cold person is then pruned at its first
    binding, skipping the email cross-product entirely.  The full
    enumeration pays for all ``persons * EMAILS`` rows.
    """
    persons = n_nodes // (2 + EMAILS)
    rng = random.Random(seed)
    session = connect(path, create=True, root="directory")
    for i in range(persons):
        if i < HOT_PERSONS:
            conf = round(rng.uniform(0.94, 0.99), 3)
        else:
            conf = round(rng.uniform(0.02, 0.12), 3)
        session.update(
            repro.update(
                repro.pattern("directory", variable="d", anchored=True)
            ).insert(
                "d", repro.tree("person", repro.tree("name", f"p{i:04d}"))
            ),
            confidence=conf,
        )
    for j in range(EMAILS):
        session.update(
            repro.update(repro.pattern("person", variable="p")).insert(
                "p", repro.tree("email", f"m{j}@example.org")
            ),
            confidence=round(rng.uniform(0.4, 0.8), 3),
        )
    return session


def build_anytime_warehouse(path, persons: int, layers: int, groups: int, seed: int = 7):
    """One answer group whose DNF is a union of *overlapping* bipartite
    blocks: person i (in groups g1, g2) x layer j (targeting one group).

    With each person in two groups the blocks share person events, so
    the Shannon expansion cannot split the graph into independent
    components and its recursion grows superpolynomially — the regime
    the anytime estimator exists for.  Confidences are kept low so the
    group probability stays interior (~0.76): the sampler has real
    variance to fight, not a near-certain event.
    """
    rng = random.Random(seed)
    session = connect(path, create=True, root="directory")
    for _ in range(persons):
        g1, g2 = rng.sample(range(groups), 2)
        session.update(
            repro.update(
                repro.pattern("directory", variable="d", anchored=True)
            ).insert(
                "d",
                repro.tree(
                    "person",
                    repro.tree("name", "dup"),
                    repro.tree("group", f"g{g1}"),
                    repro.tree("group", f"g{g2}"),
                ),
            ),
            confidence=round(rng.uniform(0.05, 0.30), 3),
        )
    for _ in range(layers):
        g = rng.randrange(groups)
        session.update(
            repro.update(
                parse_pattern(f'//person [$p] {{ group [="g{g}"] }}')
            ).insert("p", repro.tree("flag", "x")),
            confidence=round(rng.uniform(0.05, 0.30), 3),
        )
    return session


def _best_of(callable_, repeats: int = 5) -> float:
    """Minimum wall-clock over *repeats* calls (noise-robust timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _row_key(row):
    return (row.probability, row.tree.canonical())


# ----------------------------------------------------------------------
# pytest tier: the acceptance assertions
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n_nodes", [320, 1200])
def test_topk_branch_and_bound(report, benchmark, tmp_path_factory, n_nodes):
    """E18a — top-5 branch-and-bound vs enumerate-everything-and-sort.

    Same rows in the same order, and at 1200 nodes the pruned join must
    be at least 5x faster (``E18_MIN_SPEEDUP`` relaxes the factor on
    noisy shared runners).
    """
    path = tmp_path_factory.mktemp("e18a") / f"wh-{n_nodes}"
    with build_topk_warehouse(path, n_nodes) as session:
        topk_rows = list(
            session.query(TOPK_PATTERN).order_by_probability().limit(TOPK)
        )
        full = list(session.query(TOPK_PATTERN))
        expected = sorted(full, key=lambda row: -row.probability)[:TOPK]
        assert [_row_key(r) for r in topk_rows] == [_row_key(r) for r in expected]

        counters.reset()
        counters.enable()
        try:
            list(session.query(TOPK_PATTERN).order_by_probability().limit(TOPK))
            pruned = counters.get("match.bound_pruned")
        finally:
            counters.reset()
        assert pruned > 0, "bounded join never pruned a partial match"

        def run():
            topk = _best_of(
                lambda: list(
                    session.query(TOPK_PATTERN).order_by_probability().limit(TOPK)
                )
            )
            full_sort = _best_of(
                lambda: sorted(
                    session.query(TOPK_PATTERN),
                    key=lambda row: -row.probability,
                )[:TOPK]
            )
            speedup = full_sort / topk if topk > 0 else float("inf")
            if n_nodes >= 1200:
                floor = float(os.environ.get("E18_MIN_SPEEDUP", "5.0"))
                assert speedup >= floor, (
                    f"top-{TOPK} branch-and-bound ({topk:.6f}s) is only "
                    f"{speedup:.2f}x faster than enumerate+sort "
                    f"({full_sort:.6f}s) on {n_nodes} nodes; need >= {floor}x"
                )
            return [
                [n_nodes, len(full), fmt(full_sort), fmt(topk), fmt(speedup, 3)]
            ]

        rows = benchmark.pedantic(run, rounds=1)
    report.table(
        f"E18a top-{TOPK} branch-and-bound vs enumerate+sort, "
        f"{n_nodes}-node directory",
        ["nodes", "total rows", "enumerate+sort s", f"top-{TOPK} s", "speedup"],
        rows,
    )


def test_anytime_estimate_beats_exact_shannon(report, benchmark, tmp_path_factory):
    """E18b — the anytime path answers inside a budget exact cannot meet.

    On the overlapping-block event graph the exact Shannon expansion
    must cost more than 10x the sampling deadline, while ``estimate``
    lands within ±epsilon of the exact probability.
    """
    path = tmp_path_factory.mktemp("e18b") / "wh"
    with build_anytime_warehouse(
        path, ANYTIME_PERSONS, ANYTIME_LAYERS, ANYTIME_GROUPS
    ) as session:
        # Warm-up: plan + document walk cached for both paths.
        assert list(session.query(ANYTIME_PATTERN).limit(1))

        def run():
            start = time.perf_counter()
            answers = session.query(ANYTIME_PATTERN).answers()
            exact_s = time.perf_counter() - start
            start = time.perf_counter()
            estimates = session.query(ANYTIME_PATTERN).estimate(
                epsilon=EPSILON, deadline_ms=DEADLINE_MS, seed=0
            )
            estimate_s = time.perf_counter() - start
            assert len(answers) == len(estimates) == 1
            error = abs(estimates[0].probability - answers[0].probability)
            assert error <= EPSILON, (
                f"estimate off by {error:.4f} > epsilon {EPSILON}"
            )
            deadline_s = DEADLINE_MS / 1000.0
            assert exact_s >= 10.0 * deadline_s, (
                f"exact Shannon ({exact_s:.3f}s) no longer exceeds 10x the "
                f"{DEADLINE_MS}ms deadline — grow the anytime workload"
            )
            slack = float(os.environ.get("E18_TIMING_SLACK", "3.0"))
            assert estimate_s <= exact_s / slack, (
                f"anytime path ({estimate_s:.3f}s) is not meaningfully "
                f"faster than exact ({exact_s:.3f}s)"
            )
            return [
                [
                    fmt(answers[0].probability, 6),
                    fmt(estimates[0].probability, 6),
                    estimates[0].samples,
                    fmt(exact_s),
                    fmt(estimate_s),
                    fmt(exact_s / estimate_s, 3),
                ]
            ]

        rows = benchmark.pedantic(run, rounds=1)
    report.table(
        f"E18b anytime estimate (eps={EPSILON}, deadline={DEADLINE_MS}ms) "
        "vs exact Shannon, overlapping-block event graph",
        ["exact p", "estimate p", "samples", "exact s", "estimate s", "ratio"],
        rows,
    )


# ----------------------------------------------------------------------
# script entry point (machine-readable medians for the trajectory gate)
# ----------------------------------------------------------------------


def run_topk_medians(sizes, repeats: int = 5):
    table_rows = []
    results = []
    for n_nodes in sizes:
        with tempfile.TemporaryDirectory() as tmp:
            with build_topk_warehouse(Path(tmp) / "wh", n_nodes) as session:
                topk_rows = [
                    _row_key(r)
                    for r in session.query(TOPK_PATTERN)
                    .order_by_probability()
                    .limit(TOPK)
                ]
                full = list(session.query(TOPK_PATTERN))
                expected = [
                    _row_key(r)
                    for r in sorted(full, key=lambda row: -row.probability)[:TOPK]
                ]
                assert topk_rows == expected  # pruning never changes results
                topk = _best_of(
                    lambda: list(
                        session.query(TOPK_PATTERN)
                        .order_by_probability()
                        .limit(TOPK)
                    ),
                    repeats,
                )
                full_sort = _best_of(
                    lambda: sorted(
                        session.query(TOPK_PATTERN),
                        key=lambda row: -row.probability,
                    )[:TOPK],
                    repeats,
                )
        speedup = full_sort / topk if topk else float("inf")
        table_rows.append(
            [
                n_nodes,
                len(full),
                fmt(full_sort * 1e6),
                fmt(topk * 1e6),
                fmt(speedup, 3),
            ]
        )
        results.append(
            {
                "nodes": n_nodes,
                "rows": len(full),
                "full_sort_us": full_sort * 1e6,
                "topk5_us": topk * 1e6,
            }
        )
    return table_rows, results


def run_anytime_medians(repeats: int = 3):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "wh"
        with build_anytime_warehouse(
            path, ANYTIME_PERSONS, ANYTIME_LAYERS, ANYTIME_GROUPS
        ) as session:
            exact_p = session.query(ANYTIME_PATTERN).answers()[0].probability
            estimates = session.query(ANYTIME_PATTERN).estimate(
                epsilon=EPSILON, deadline_ms=DEADLINE_MS, seed=0
            )
            assert abs(estimates[0].probability - exact_p) <= EPSILON
            estimate = _best_of(
                lambda: session.query(ANYTIME_PATTERN).estimate(
                    epsilon=EPSILON, deadline_ms=DEADLINE_MS, seed=0
                ),
                repeats,
            )
        # Exact Shannon timing must be cold: the engine's shared
        # ShannonCache would otherwise serve repeats for free, so each
        # repeat reopens the warehouse for a fresh cache.
        exact = float("inf")
        for _ in range(repeats):
            with connect(path) as session:
                start = time.perf_counter()
                answers = session.query(ANYTIME_PATTERN).answers()
                elapsed = time.perf_counter() - start
            assert answers[0].probability == exact_p
            exact = min(exact, elapsed)
    table_row = [
        fmt(exact_p, 6),
        fmt(estimates[0].probability, 6),
        estimates[0].samples,
        fmt(exact * 1e3),
        fmt(estimate * 1e3),
        fmt(exact / estimate if estimate else float("inf"), 3),
    ]
    result = {
        "exact_probability": exact_p,
        "estimate_probability": estimates[0].probability,
        "samples": estimates[0].samples,
        "exact_shannon_ms": exact * 1e3,
        "estimate_wall_ms": estimate * 1e3,
    }
    return table_row, result


def _print_table(title: str, headers, rows) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(title)
    print("-" * len(title))
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


def write_json(payload: dict) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="E18 top-k / anytime medians (script mode)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, fewer repeats (CI smoke; no timing assertions)",
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else SIZES
    repeats = 3 if args.quick else 5
    topk_rows, topk_results = run_topk_medians(sizes, repeats)
    _print_table(
        f"E18a top-{TOPK} branch-and-bound vs enumerate+sort",
        ["nodes", "rows", "enumerate+sort us", f"top-{TOPK} us", "speedup"],
        topk_rows,
    )
    anytime_row, anytime_result = run_anytime_medians(2 if args.quick else 3)
    _print_table(
        f"E18b anytime estimate (eps={EPSILON}, deadline={DEADLINE_MS}ms) "
        "vs exact Shannon",
        ["exact p", "estimate p", "samples", "exact ms", "estimate ms", "ratio"],
        [anytime_row],
    )
    write_json(
        {
            "experiment": "E18",
            "metric": "query_us",
            "quick": args.quick,
            "topk": topk_results,
            "anytime": anytime_result,
            "trajectory": [
                *(
                    {
                        "id": f"e18.topk5_us.nodes={record['nodes']}",
                        "value": record["topk5_us"],
                        "direction": "lower",
                    }
                    for record in topk_results
                ),
                {
                    "id": "e18.estimate_wall_ms",
                    "value": anytime_result["estimate_wall_ms"],
                    "direction": "lower",
                },
            ],
        }
    )
    print(f"machine-readable medians written to {JSON_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
