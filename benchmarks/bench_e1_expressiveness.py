"""E1 — Expressiveness of the fuzzy tree model (paper, slide 12).

Claim: the fuzzy tree model is as expressive as the possible-worlds
model.  This bench (a) reproduces the slide-12 worked example exactly,
(b) round-trips random fuzzy documents through the possible-worlds
representation and back, checking the distribution is preserved, and
(c) times both translation directions as the number of events grows
(the semantics arrow is exponential in events — the reason the fuzzy
representation exists).
"""

from __future__ import annotations

import random

import pytest

from repro import (
    Condition,
    EventTable,
    FuzzyNode,
    FuzzyTree,
    from_possible_worlds,
    to_possible_worlds,
)
from repro.trees import RandomTreeConfig
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree

from conftest import fmt


def slide12_doc() -> FuzzyTree:
    events = EventTable({"w1": 0.8, "w2": 0.7})
    root = FuzzyNode(
        "A",
        children=[
            FuzzyNode("B", condition=Condition.of("w1", "!w2")),
            FuzzyNode("C", children=[FuzzyNode("D", condition=Condition.of("w2"))]),
        ],
    )
    return FuzzyTree(root, events)


def doc_with_events(n_events: int, seed: int = 0) -> FuzzyTree:
    config = FuzzyWorkloadConfig(
        tree=RandomTreeConfig(
            max_nodes=30, max_children=3, max_depth=5, min_nodes=15
        ),
        n_events=n_events,
        condition_probability=0.9,
    )
    return random_fuzzy_tree(random.Random(seed + n_events), config)


def test_slide12_world_table(report, benchmark):
    doc = slide12_doc()
    worlds = benchmark(to_possible_worlds, doc)
    rows = [[w.tree.canonical(), fmt(w.probability)] for w in worlds]
    report.table(
        "E1a  slide-12 fuzzy tree -> possible worlds (paper: 0.70 / 0.24 / 0.06)",
        ["world", "probability"],
        rows,
    )
    assert worlds.probability_of(doc.world({"w1": False, "w2": True})) == pytest.approx(0.70)
    assert len(worlds) == 3


@pytest.mark.parametrize("n_events", [2, 4, 6, 8])
def test_roundtrip_preserves_distribution(report, benchmark, n_events):
    doc = doc_with_events(n_events)
    worlds = to_possible_worlds(doc)

    def roundtrip():
        rebuilt = from_possible_worlds(worlds)
        return to_possible_worlds(rebuilt)

    rebuilt_worlds = benchmark(roundtrip)
    assert rebuilt_worlds.same_distribution(worlds, 1e-9)
    report.table(
        f"E1b  round-trip, {n_events} events",
        ["direction", "worlds", "selector events"],
        [
            ["fuzzy -> worlds", len(worlds), len(doc.used_events())],
            ["worlds -> fuzzy -> worlds", len(rebuilt_worlds), max(0, len(worlds) - 1)],
        ],
    )


@pytest.mark.parametrize("n_events", [4, 8, 12, 16])
def test_semantics_cost_grows_with_events(report, benchmark, n_events):
    """The semantics arrow grows with the number of used events.

    The enumerator Shannon-expands over live conditions, so its cost is
    the number of condition-distinguishable world classes — still
    growing fast with the event count, but far below 2^n.
    """
    doc = doc_with_events(n_events, seed=3)
    worlds = benchmark(to_possible_worlds, doc)
    report.table(
        f"E1c  semantics enumeration, {n_events} events requested",
        ["events used", "naive assignments (2^n)", "distinct worlds"],
        [[len(doc.used_events()), 2 ** len(doc.used_events()), len(worlds)]],
    )
