"""E6 — Fuzzy evaluation vs naive possible-worlds vs Monte-Carlo.

The reason the fuzzy-tree representation exists (slides 12–13): direct
evaluation avoids enumerating the 2^n worlds.  The bench sweeps the
number of events at fixed document size (worlds path blows up, fuzzy
path stays flat) and the document size at fixed events (both scale
polynomially), with Monte-Carlo sampling as the third series.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import (
    estimate_query,
    query_possible_worlds,
    to_possible_worlds,
)
from repro.core.query import query_fuzzy_tree
from repro.trees import RandomTreeConfig
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree, random_query_for

from conftest import fmt


def instance(n_nodes: int, n_events: int, seed: int = 5):
    rng = random.Random(seed)
    config = FuzzyWorkloadConfig(
        tree=RandomTreeConfig(
            max_nodes=n_nodes,
            max_children=4,
            max_depth=6,
            min_nodes=max(2, n_nodes // 2),
        ),
        n_events=n_events,
        condition_probability=0.7,
    )
    doc = random_fuzzy_tree(rng, config)
    pattern = random_query_for(rng, doc.root, max_nodes=3, join_probability=0.0)
    return doc, pattern


def timed(function) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def test_latency_vs_events(report, benchmark):
    """The crossover table: worlds path exponential, fuzzy path flat."""

    def run():
        rows = []
        for n_events in (2, 4, 6, 8, 10, 12):
            doc, pattern = instance(40, n_events)
            fuzzy_s = timed(lambda: query_fuzzy_tree(doc, pattern))
            worlds_s = timed(
                lambda: query_possible_worlds(to_possible_worlds(doc), pattern)
            )
            mc_s = timed(
                lambda: estimate_query(doc, pattern, samples=500, rng=random.Random(1))
            )
            rows.append(
                [
                    n_events,
                    2 ** len(doc.used_events()),
                    fmt(fuzzy_s),
                    fmt(worlds_s),
                    fmt(mc_s),
                    fmt(worlds_s / fuzzy_s if fuzzy_s else float("inf"), 3),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report.table(
        "E6a  query latency vs number of events (40-node documents)",
        ["events", "worlds", "fuzzy (s)", "naive worlds (s)", "monte-carlo 500 (s)", "naive/fuzzy"],
        rows,
    )
    # Shape check: the worlds/fuzzy ratio must grow with the event count.
    assert float(rows[-1][5]) > float(rows[0][5])


def test_latency_vs_document_size(report, benchmark):
    def run():
        rows = []
        for n_nodes in (20, 50, 100, 200, 400):
            doc, pattern = instance(n_nodes, n_events=6, seed=6)
            fuzzy_s = timed(lambda: query_fuzzy_tree(doc, pattern))
            mc_s = timed(
                lambda: estimate_query(doc, pattern, samples=300, rng=random.Random(2))
            )
            rows.append([doc.size(), fmt(fuzzy_s), fmt(mc_s)])
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report.table(
        "E6b  query latency vs document size (6 events)",
        ["nodes", "fuzzy (s)", "monte-carlo 300 (s)"],
        rows,
    )


@pytest.mark.parametrize("n_events", [4, 8, 12])
def test_fuzzy_query_benchmark(benchmark, n_events):
    doc, pattern = instance(60, n_events, seed=7)
    benchmark(query_fuzzy_tree, doc, pattern)


@pytest.mark.parametrize("samples", [100, 1000])
def test_montecarlo_accuracy_vs_cost(report, benchmark, samples):
    doc, pattern = instance(40, 6, seed=8)
    exact = {a.tree.canonical(): a.probability for a in query_fuzzy_tree(doc, pattern)}
    estimates = benchmark(
        lambda: estimate_query(doc, pattern, samples=samples, rng=random.Random(3))
    )
    worst = 0.0
    for estimate in estimates:
        err = abs(estimate.probability - exact.get(estimate.tree.canonical(), 0.0))
        worst = max(worst, err)
    report.table(
        f"E6c  Monte-Carlo accuracy, {samples} samples",
        ["samples", "answers", "worst abs error"],
        [[samples, len(estimates), fmt(worst)]],
    )
    assert worst <= 4.5 / (samples ** 0.5)  # ~4.5 sigma for p(1-p)<=1/4
