"""E5 — Exponential growth under deletions (paper, slide 14).

Claim: "deletions may yield an exponential growth of the fuzzy tree in
case of complex dependencies".  The bench constructs exactly such a
dependency chain — k successive uncertain deletions whose queries
depend on previously conditioned nodes — and measures the document
size with and without simplification after each step.  The
unsimplified series grows super-linearly in k; simplification keeps it
bounded while (checked) preserving the distribution.
"""

from __future__ import annotations

import pytest

from repro import (
    Condition,
    DeleteOperation,
    EventTable,
    FuzzyNode,
    FuzzyTree,
    UpdateTransaction,
    simplify,
)
from repro.core.update import apply_update
from repro.tpwj.parser import parse_pattern


def chain_document(width: int = 4) -> FuzzyTree:
    """A root with `width` uncertain guard nodes and one payload target.

    Each deletion step conditions on *two* guards, so its match
    condition carries several literals — the "complex dependencies"
    of slide 14.  The survivor copies of each step then pick up those
    literals, and the next step's complement decomposition splits every
    copy again: multiplicative growth.
    """
    events = EventTable({f"g{i}": 0.6 for i in range(width)})
    root = FuzzyNode("root")
    for i in range(width):
        root.add_child(
            FuzzyNode("guard", value=f"g{i}", condition=Condition.of(f"g{i}"))
        )
    root.add_child(FuzzyNode("item", value="target"))
    return FuzzyTree(root, events)


def deletion_step(step: int, width: int = 4) -> UpdateTransaction:
    """Delete the item when two (rotating) guards are present, conf 0.8."""
    first = f"g{step % width}"
    second = f"g{(step + 1) % width}"
    query = parse_pattern(
        f'/root {{ guard[="{first}"], guard[="{second}"], item[$t="target"] }}'
    )
    return UpdateTransaction(query, [DeleteOperation("t")], 0.8)


@pytest.mark.parametrize("steps", [1, 2, 4, 6, 8])
def test_growth_without_simplification(report, benchmark, steps):
    def run():
        doc = chain_document()
        for step in range(steps):
            apply_update(doc, deletion_step(step))
        return doc

    doc = benchmark(run)
    report.table(
        f"E5a  {steps} dependent deletions, no simplification",
        ["steps", "nodes", "condition literals", "events"],
        [[steps, doc.size(), doc.condition_literal_count(), len(doc.events)]],
    )


def test_growth_series_with_and_without_simplify(report, benchmark):
    def run():
        rows = []
        plain = chain_document()
        managed = chain_document()
        for step in range(10):
            apply_update(plain, deletion_step(step))
            apply_update(managed, deletion_step(step))
            simplify(managed)
            rows.append(
                [
                    step + 1,
                    plain.size(),
                    plain.condition_literal_count(),
                    managed.size(),
                    managed.condition_literal_count(),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report.table(
        "E5b  growth series: raw vs simplified (paper: deletions may grow the tree)",
        ["step", "raw nodes", "raw literals", "simplified nodes", "simplified literals"],
        rows,
    )
    final_raw_nodes = rows[-1][1]
    final_managed_nodes = rows[-1][3]
    assert final_raw_nodes >= final_managed_nodes
    # Raw literal count must grow markedly past the initial document's.
    assert rows[-1][2] > 3 * chain_document().condition_literal_count()


def fresh_chain_document(steps: int) -> FuzzyTree:
    """Guards for *steps* deletions, two fresh guards per step."""
    events = EventTable({f"g{i}": 0.6 for i in range(2 * steps)})
    root = FuzzyNode("root")
    for i in range(2 * steps):
        root.add_child(
            FuzzyNode("guard", value=f"g{i}", condition=Condition.of(f"g{i}"))
        )
    root.add_child(FuzzyNode("item", value="target"))
    return FuzzyTree(root, events)


def fresh_deletion_step(step: int) -> UpdateTransaction:
    first, second = f"g{2 * step}", f"g{2 * step + 1}"
    query = parse_pattern(
        f'/root {{ guard[="{first}"], guard[="{second}"], item[$t="target"] }}'
    )
    return UpdateTransaction(query, [DeleteOperation("t")], 0.8)


def test_exponential_growth_with_fresh_dependencies(report, benchmark):
    """Slide 14's worst case: every deletion depends on events the
    survivors have never seen, so each survivor copy splits three ways
    (¬g2k ∪ g2k¬g2k+1 ∪ g2k g2k+1 ¬wk) — 3^k growth."""

    def run():
        rows = []
        doc = fresh_chain_document(steps=6)
        copies = 1
        for step in range(6):
            apply_update(doc, fresh_deletion_step(step))
            copies *= 3
            item_copies = sum(
                1 for n in doc.iter_nodes() if n.label == "item"
            )
            rows.append(
                [step + 1, 3 ** (step + 1), item_copies, doc.size(),
                 doc.condition_literal_count()]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report.table(
        "E5c  exponential growth: fresh dependencies per deletion "
        "(paper: 'may yield an exponential growth')",
        ["step", "3^k", "item survivor copies", "total nodes", "literals"],
        rows,
    )
    # The survivor-copy count must track the 3^k model exactly.
    for step, model, item_copies, _nodes, _literals in rows:
        assert item_copies == model, (step, item_copies, model)
