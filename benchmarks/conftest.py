"""Shared infrastructure for the experiment benchmarks.

Each benchmark module regenerates one experiment from DESIGN.md §4
(E1–E9).  Timing goes through pytest-benchmark; the paper-style series
and tables are both printed (visible with ``-s``) and appended to
``benchmarks/out/report.txt`` so a plain ``pytest benchmarks/
--benchmark-only`` run leaves the rows on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


class Reporter:
    """Collects experiment tables and writes them out."""

    def __init__(self) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        self.path = OUT_DIR / "report.txt"

    def table(self, title: str, headers: list[str], rows: list[list[object]]) -> None:
        widths = [
            max(len(str(headers[i])), *(len(str(row[i])) for row in rows)) if rows else len(str(headers[i]))
            for i in range(len(headers))
        ]
        lines = [title, "-" * len(title)]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
        for row in rows:
            lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        block = "\n".join(lines) + "\n\n"
        print("\n" + block, end="")
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(block)


@pytest.fixture(scope="session")
def report() -> Reporter:
    reporter = Reporter()
    # Start each session's report fresh.
    reporter.path.write_text("")
    return reporter


def fmt(value: float, digits: int = 4) -> str:
    """Compact float formatting for table cells."""
    return f"{value:.{digits}g}"
