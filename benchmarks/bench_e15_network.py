"""E15 — the HTTP front end (repro serve) under network load.

PR 7 put the warehouse on a socket: a stdlib-only asyncio HTTP/JSON
server dispatching query execution to a bounded ``SessionPool``, with
admission control (429 + ``Retry-After`` past ``workers +
queue_depth`` in-flight requests) and per-request deadlines that
cancel the underlying row stream.  This experiment prices the wire:

* **E15a — closed-loop throughput.**  A fixed fleet of keep-alive
  clients, each issuing the next ``POST /query`` the moment the
  previous response lands.  Reports aggregate qps and per-request
  p50/p99 latency.  Closed loops self-regulate — offered load tracks
  service rate, so this is the server's sustainable capacity.

* **E15b — open-loop latency and load-shedding.**  Requests arrive on
  a fixed schedule regardless of completions (latency measured from
  the *scheduled* arrival, so queueing delay counts — the coordinated
  omission fix).  Two rates against a deliberately small server
  (``workers=2, queue_depth=4``): a light rate well under capacity,
  and an overload rate beyond it, where admission control must shed
  with 429 instead of letting the queue grow without bound.

Correctness while timing: for every query pattern the HTTP response
body must be **byte-identical** to encoding the same rows through the
in-process result set (the ``canonical_json`` determinism contract the
unit suite property-tests; here it is checked against the live
server on every size).

Gated trajectory medians: closed-loop qps (higher is better) and
closed-loop p50 (lower is better).  The p99s, the open-loop numbers
and the shed counts are recorded for humans but deliberately not
gated — tails and shed ratios on a noisy two-core CI runner swing
across the gate's whole slack between identical runs.

Runs both ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_e15_network.py \
        -x -q -o python_files="bench_*.py"
    PYTHONPATH=src python benchmarks/bench_e15_network.py [--quick]

The script form needs no pytest plugins (CI smoke uses ``--quick``)
and always writes machine-readable medians — including the
``trajectory`` entries the CI benchmark-trajectory gate compares —
to ``benchmarks/out/BENCH_E15.json``.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import queue
import random
import shutil
import sys
import threading
import time
from collections import Counter
from pathlib import Path

try:
    from conftest import fmt
except ImportError:  # script mode: run outside pytest's rootdir sys.path
    def fmt(value: float, digits: int = 4) -> str:
        return f"{value:.{digits}g}"

from repro.api import connect
from repro.serve.http import ServerThread, encode_row, query_response_body
from repro.trees.random import RandomTreeConfig
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree

OUT_DIR = Path(__file__).parent / "out"
JSON_PATH = OUT_DIR / "BENCH_E15.json"

SIZES = (300, 1200)
QUICK_SIZES = (300,)
TOP_K = 10
#: Closed-loop client fleet (each a persistent keep-alive connection).
CLIENTS = 4
#: Sender threads for the open-loop schedule; must exceed the small
#: server's admission capacity or the client, not the server, becomes
#: the bottleneck that hides shedding.
OPEN_SENDERS = 24
REPEATS = 3
QUICK_REPEATS = 2
#: The deliberately small E15b server: capacity = 2 + 4 = 6 in-flight.
OPEN_WORKERS = 2
OPEN_QUEUE_DEPTH = 4


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------


def build_session(base: Path, n_nodes: int, seed: int = 7):
    """A served warehouse on a random fuzzy document, plus a query mix."""
    rng = random.Random(seed)
    config = FuzzyWorkloadConfig(
        tree=RandomTreeConfig(
            max_nodes=n_nodes,
            min_nodes=max(1, int(n_nodes * 0.9)),
            max_depth=10,
        ),
        n_events=6,
    )
    document = random_fuzzy_tree(rng, config)
    path = base / f"serve-{n_nodes}"
    shutil.rmtree(path, ignore_errors=True)
    session = connect(
        path, create=True, document=document, snapshot_every=1_000_000
    )
    labels = Counter(node.label for node in session.document.root.iter())
    patterns = [f"//{label}" for label, _ in labels.most_common(2)]
    return session, patterns


def _http_query(conn, pattern: str, limit: int):
    """One wire request on a persistent connection: (status, body)."""
    body = json.dumps({"pattern": pattern, "limit": limit}).encode("utf-8")
    conn.request(
        "POST", "/query", body, {"Content-Type": "application/json"}
    )
    response = conn.getresponse()
    return response.status, response.read()


def _assert_wire_matches_inprocess(session, handle, patterns) -> None:
    """The byte-identity contract, against the live server."""
    conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=60)
    try:
        for pattern in patterns:
            status, body = _http_query(conn, pattern, TOP_K)
            assert status == 200, f"{pattern}: HTTP {status}"
            with session.query(pattern).limit(TOP_K).stream() as stream:
                expected = query_response_body(
                    [encode_row(row) for row in stream]
                )
            assert body == expected, (
                f"wire response diverged from in-process rows for {pattern!r}"
            )
    finally:
        conn.close()


# ----------------------------------------------------------------------
# E15a — closed-loop throughput
# ----------------------------------------------------------------------


def _closed_loop(port: int, patterns, n_clients: int, per_client: int):
    """(qps, sorted latencies in seconds) for one closed-loop burst."""
    barrier = threading.Barrier(n_clients + 1)
    latencies: list[float] = []
    errors: list = []
    lock = threading.Lock()

    def client(k: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        local: list[float] = []
        try:
            barrier.wait()
            for i in range(per_client):
                start = time.perf_counter()
                status, _ = _http_query(
                    conn, patterns[(i + k) % len(patterns)], TOP_K
                )
                local.append(time.perf_counter() - start)
                if status != 200:
                    raise AssertionError(f"closed loop got HTTP {status}")
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(repr(exc))
        finally:
            conn.close()
        with lock:
            latencies.extend(local)

    threads = [
        threading.Thread(target=client, args=(k,)) for k in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    assert not errors, errors
    return n_clients * per_client / wall, sorted(latencies)


def _percentile(ranked: list[float], p: float) -> float:
    if not ranked:
        return 0.0
    return ranked[min(len(ranked) - 1, round(len(ranked) * p))]


def run_closed_loop(base: Path, sizes, repeats: int, per_client: int):
    """E15a rows: [nodes, qps, p50 ms, p99 ms]."""
    table_rows = []
    results = []
    for n_nodes in sizes:
        session, patterns = build_session(base, n_nodes)
        try:
            with ServerThread(session, workers=4, queue_depth=16) as handle:
                _assert_wire_matches_inprocess(session, handle, patterns)
                best_qps, best_ranked = 0.0, []
                for _ in range(repeats):  # best-of: noise-robust
                    qps, ranked = _closed_loop(
                        handle.port, patterns, CLIENTS, per_client
                    )
                    if qps > best_qps:
                        best_qps, best_ranked = qps, ranked
        finally:
            session.close()
        record = {
            "nodes": n_nodes,
            "clients": CLIENTS,
            "top_k": TOP_K,
            "qps": best_qps,
            "p50_ms": _percentile(best_ranked, 0.5) * 1e3,
            "p99_ms": _percentile(best_ranked, 0.99) * 1e3,
        }
        results.append(record)
        table_rows.append(
            [
                n_nodes,
                fmt(record["qps"]),
                fmt(record["p50_ms"]),
                fmt(record["p99_ms"]),
            ]
        )
    return table_rows, results


# ----------------------------------------------------------------------
# E15b — open-loop latency and load-shedding
# ----------------------------------------------------------------------


def _open_loop(port: int, patterns, offered_qps: float, duration: float):
    """Fixed-schedule arrivals; latency from the *scheduled* time.

    Returns (achieved qps, ok latencies sorted, shed count, ok count).
    """
    n_requests = max(1, int(offered_qps * duration))
    interval = 1.0 / offered_qps
    schedule: queue.Queue = queue.Queue()
    ok: list[float] = []
    shed = 0
    unexpected: list = []
    lock = threading.Lock()
    start = time.perf_counter() + 0.05
    for i in range(n_requests):
        schedule.put(start + i * interval)
    for _ in range(OPEN_SENDERS):
        schedule.put(None)

    def sender(k: int) -> None:
        nonlocal shed
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        i = k
        try:
            while True:
                arrival = schedule.get()
                if arrival is None:
                    return
                now = time.perf_counter()
                if now < arrival:
                    time.sleep(arrival - now)
                status, _ = _http_query(
                    conn, patterns[i % len(patterns)], TOP_K
                )
                latency = time.perf_counter() - arrival
                i += 1
                with lock:
                    if status == 200:
                        ok.append(latency)
                    elif status == 429:
                        shed += 1
                    else:
                        unexpected.append(status)
        except Exception as exc:  # pragma: no cover - failure path
            unexpected.append(repr(exc))
        finally:
            conn.close()

    threads = [
        threading.Thread(target=sender, args=(k,)) for k in range(OPEN_SENDERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    assert not unexpected, unexpected
    return (len(ok) + shed) / wall, sorted(ok), shed, len(ok)


def run_open_loop(base: Path, sizes, closed_by_nodes: dict, duration: float):
    """E15b rows: [nodes, rate, offered qps, ok, shed, p50 ms, p99 ms].

    Rates derive from E15a's measured capacity, scaled to the small
    server (``OPEN_WORKERS`` of E15a's 4 workers): *light* sits well
    under it, *overload* well past it, both capped so the Python-side
    sender fleet on a tiny CI runner can actually offer the schedule.
    """
    table_rows = []
    results = []
    for n_nodes in sizes:
        capacity_guess = closed_by_nodes[n_nodes] * (OPEN_WORKERS / 4.0)
        rates = (
            ("light", min(0.4 * capacity_guess, 150.0)),
            ("overload", min(3.0 * capacity_guess, 600.0)),
        )
        session, patterns = build_session(base, n_nodes)
        try:
            with ServerThread(
                session, workers=OPEN_WORKERS, queue_depth=OPEN_QUEUE_DEPTH
            ) as handle:
                for rate_name, offered in rates:
                    achieved, ranked, shed, n_ok = _open_loop(
                        handle.port, patterns, offered, duration
                    )
                    record = {
                        "nodes": n_nodes,
                        "rate": rate_name,
                        "offered_qps": offered,
                        "achieved_qps": achieved,
                        "ok": n_ok,
                        "shed_429": shed,
                        "p50_ms": _percentile(ranked, 0.5) * 1e3,
                        "p99_ms": _percentile(ranked, 0.99) * 1e3,
                        "workers": OPEN_WORKERS,
                        "queue_depth": OPEN_QUEUE_DEPTH,
                    }
                    results.append(record)
                    table_rows.append(
                        [
                            n_nodes,
                            rate_name,
                            fmt(offered),
                            n_ok,
                            shed,
                            fmt(record["p50_ms"]),
                            fmt(record["p99_ms"]),
                        ]
                    )
        finally:
            session.close()
    return table_rows, results


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

_E15A_HEADERS = ["nodes", "qps", "p50 ms", "p99 ms"]
_E15B_HEADERS = [
    "nodes",
    "rate",
    "offered qps",
    "ok",
    "shed 429",
    "p50 ms",
    "p99 ms",
]


def _trajectory(closed_json) -> list[dict]:
    """Gated medians: closed-loop qps and p50 (see module docstring for
    why the p99s, open-loop latencies and shed counts are not gated)."""
    entries = []
    for record in closed_json:
        entries.append(
            {
                "id": f"e15.closed_qps.nodes={record['nodes']}",
                "value": record["qps"],
                "direction": "higher",
            }
        )
        entries.append(
            {
                "id": f"e15.closed_p50_ms.nodes={record['nodes']}",
                "value": record["p50_ms"],
                "direction": "lower",
            }
        )
    return entries


def write_json(payload: dict) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _run_all(base: Path, sizes, repeats: int, quick: bool):
    per_client = 30 if quick else 120
    duration = 1.5 if quick else 4.0
    closed_rows, closed_json = run_closed_loop(base, sizes, repeats, per_client)
    closed_by_nodes = {r["nodes"]: r["qps"] for r in closed_json}
    open_rows, open_json = run_open_loop(base, sizes, closed_by_nodes, duration)
    payload = {
        "experiment": "E15",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "closed_loop": closed_json,
        "open_loop": open_json,
        "trajectory": _trajectory(closed_json),
    }
    return closed_rows, open_rows, payload


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_network_serving(report, tmp_path, benchmark):
    closed_rows, open_rows, payload = benchmark.pedantic(
        lambda: _run_all(tmp_path, SIZES, REPEATS, quick=False), rounds=1
    )
    report.table(
        f"E15a  closed-loop HTTP throughput ({CLIENTS} keep-alive clients, "
        f"top-{TOP_K} queries)",
        _E15A_HEADERS,
        closed_rows,
    )
    report.table(
        f"E15b  open-loop latency and shedding (workers={OPEN_WORKERS}, "
        f"queue_depth={OPEN_QUEUE_DEPTH})",
        _E15B_HEADERS,
        open_rows,
    )
    write_json(payload)
    # Admission control must actually engage past capacity.
    overload = [r for r in payload["open_loop"] if r["rate"] == "overload"]
    assert overload and all(r["shed_429"] > 0 for r in overload), (
        "the overload rate never tripped admission control: "
        f"{payload['open_loop']}"
    )


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------


def _print_table(title: str, headers, rows) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(title)
    print("-" * len(title))
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


def main(argv=None) -> int:
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small size, shorter bursts (CI smoke; no timing assertions)",
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else SIZES
    repeats = QUICK_REPEATS if args.quick else REPEATS
    with tempfile.TemporaryDirectory() as tmp:
        closed_rows, open_rows, payload = _run_all(
            Path(tmp), sizes, repeats, quick=args.quick
        )
    _print_table(
        f"E15a  closed-loop HTTP throughput ({CLIENTS} keep-alive clients, "
        f"top-{TOP_K} queries)",
        _E15A_HEADERS,
        closed_rows,
    )
    _print_table(
        f"E15b  open-loop latency and shedding (workers={OPEN_WORKERS}, "
        f"queue_depth={OPEN_QUEUE_DEPTH})",
        _E15B_HEADERS,
        open_rows,
    )
    write_json(payload)
    print(f"machine-readable medians written to {JSON_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
