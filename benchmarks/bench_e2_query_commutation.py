"""E2 — Query commutation (paper, slide 13).

Claim: evaluating a TPWJ query directly on the fuzzy tree commutes
with the possible-worlds semantics.  This bench checks the diagram on
random documents/queries of growing size and times both paths — the
fuzzy path stays polynomial while the possible-worlds path pays the
exponential world enumeration.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import query_possible_worlds, to_possible_worlds
from repro.core.query import query_fuzzy_tree
from repro.trees import RandomTreeConfig
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree, random_query_for

from conftest import fmt


def instance(n_nodes: int, n_events: int, seed: int = 1):
    rng = random.Random(seed)
    config = FuzzyWorkloadConfig(
        tree=RandomTreeConfig(
            max_nodes=n_nodes,
            max_children=4,
            max_depth=6,
            min_nodes=max(2, n_nodes // 2),
        ),
        n_events=n_events,
        condition_probability=0.9,
    )
    doc = random_fuzzy_tree(rng, config)
    pattern = random_query_for(rng, doc.root, max_nodes=4)
    return doc, pattern


@pytest.mark.parametrize("n_nodes", [20, 60, 120, 200])
def test_fuzzy_query_scales_with_document(report, benchmark, n_nodes):
    doc, pattern = instance(n_nodes, n_events=6)
    answers = benchmark(query_fuzzy_tree, doc, pattern)
    report.table(
        f"E2a  fuzzy query, {n_nodes}-node document",
        ["document nodes", "pattern", "answers"],
        [[doc.size(), str(pattern), len(answers)]],
    )


@pytest.mark.parametrize("n_events", [2, 4, 6, 8, 10])
def test_commutation_diagram_closes(report, benchmark, n_events):
    doc, pattern = instance(40, n_events, seed=2)

    def both_paths():
        via_fuzzy = query_fuzzy_tree(doc, pattern)
        via_worlds = query_possible_worlds(to_possible_worlds(doc), pattern)
        return via_fuzzy, via_worlds

    via_fuzzy, via_worlds = benchmark(both_paths)
    got = {a.tree.canonical(): a.probability for a in via_fuzzy}
    want = {w.tree.canonical(): w.probability for w in via_worlds}
    assert set(got) == set(want)
    for key in want:
        assert got[key] == pytest.approx(want[key], abs=1e-9)

    start = time.perf_counter()
    query_fuzzy_tree(doc, pattern)
    fuzzy_seconds = time.perf_counter() - start
    start = time.perf_counter()
    query_possible_worlds(to_possible_worlds(doc), pattern)
    worlds_seconds = time.perf_counter() - start
    report.table(
        f"E2b  commutation, {n_events} events (diagram closes: yes)",
        ["events", "answers", "fuzzy path (s)", "worlds path (s)", "speedup"],
        [[
            n_events,
            len(got),
            fmt(fuzzy_seconds),
            fmt(worlds_seconds),
            fmt(worlds_seconds / fuzzy_seconds if fuzzy_seconds else float("inf"), 3),
        ]],
    )
