"""E16 — process-per-shard serving and the binary snapshot codec.

PR 8 added a process-backed serving engine: a supervisor routes
document keys over a consistent-hash ring to worker *processes*, each
running its own warehouse shards behind a length-prefixed pipe
protocol.  Unlike the thread engine (E13), worker processes do not
share a GIL — on a multi-core host, CPU-bound query work scales with
workers.  The enabling cost is cold starts: every respawned worker
re-opens its shards, so PR 8 also added a binary snapshot image next
to ``document.xml``.  This experiment prices both halves:

* **E16a — cold start.**  Decoding the binary snapshot vs re-parsing
  the XML snapshot for the same document, plus the end-to-end
  ``Warehouse.open`` wall time with and without the binary image
  present.  The codec must decode ≥ 3× faster than the XML parse at
  1200 nodes (``E16_MIN_BINARY_SPEEDUP``) — that floor is what makes
  respawn-with-WAL-replay a cheap recovery primitive.

* **E16b — aggregate read throughput.**  Client threads hammering the
  same collection (8 documents × 1200 nodes) through the thread engine
  (``connect_collection(workers=4)``) vs the process engine
  (``ProcessCollection(shard_processes=4)``).  On a host with ≥ 2
  cores the process engine must deliver ≥ 1.8× the thread engine's
  aggregate throughput (``E16_MIN_PROCESS_SPEEDUP``).  On a
  single-core host the comparison still runs for correctness (process
  rows must equal thread rows) but the speedup is *reported, not
  asserted* — there is no parallelism to buy, which is exactly why
  ``connect_collection(mode="process")`` degrades to threads there.

Runs both ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_e16_process_shards.py \
        -x -q -o python_files="bench_*.py"
    PYTHONPATH=src python benchmarks/bench_e16_process_shards.py [--quick]

The script form needs no pytest plugins (CI smoke uses ``--quick``)
and always writes machine-readable medians — including the
``trajectory`` entries the CI benchmark-trajectory gate compares —
to ``benchmarks/out/BENCH_E16.json``.  Process-engine trajectory
entries are emitted only on multi-core hosts, so a single-core
baseline never gates them.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import threading
import time
from pathlib import Path

try:
    from conftest import fmt
except ImportError:  # script mode: run outside pytest's rootdir sys.path
    def fmt(value: float, digits: int = 4) -> str:
        return f"{value:.{digits}g}"

from repro.serve import ProcessCollection, connect_collection
from repro.trees.random import RandomTreeConfig
from repro.warehouse import Warehouse
from repro.warehouse.snapshot_binary import load_binary, save_binary
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree
from repro.xmlio import fuzzy_from_string, fuzzy_to_string

OUT_DIR = Path(__file__).parent / "out"
JSON_PATH = OUT_DIR / "BENCH_E16.json"

SIZES = (300, 1200)
QUICK_SIZES = (300,)
#: (documents, nodes) read-throughput workload points.  Quick mode runs
#: a strict prefix with the same clients/queries per point, so the
#: trajectory gate compares identical workloads across modes.
THROUGHPUT_CONFIGS = ((4, 300), (8, 1200))
QUICK_THROUGHPUT_CONFIGS = ((4, 300),)
WORKERS = 4
CLIENTS = 8
PER_CLIENT = 15
TOP_K = 10
REPEATS = 3
QUICK_REPEATS = 2


def _min_binary_speedup() -> float:
    # Acceptance floor: binary decode vs XML parse at the largest size.
    return float(os.environ.get("E16_MIN_BINARY_SPEEDUP", "3.0"))


def _min_process_speedup() -> float:
    # Acceptance floor: process-engine aggregate qps over the thread
    # engine's, asserted only on hosts with >= 2 cores.
    return float(os.environ.get("E16_MIN_PROCESS_SPEEDUP", "1.8"))


def _document(n_nodes: int, seed: int = 7):
    rng = random.Random(seed)
    return random_fuzzy_tree(
        rng,
        FuzzyWorkloadConfig(
            tree=RandomTreeConfig(
                max_nodes=n_nodes,
                min_nodes=max(1, int(n_nodes * 0.9)),
                max_depth=10,
            ),
            n_events=6,
        ),
    )


# ----------------------------------------------------------------------
# E16a — cold start
# ----------------------------------------------------------------------


def _best_of(repeats: int, fn, calls: int = 3) -> float:
    """Best-of-*repeats* samples, each averaging *calls* back-to-back runs.

    Cold-start operations are sub-millisecond at the small sizes; one
    call per sample would gate the trajectory on scheduler jitter.
    """
    best = float("inf")
    for _ in range(max(repeats, 3)):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, (time.perf_counter() - start) / calls)
    return best


def run_cold_start(base: Path, sizes, repeats: int):
    """E16a rows: [nodes, xml parse ms, bin decode ms, codec speedup,
    open+bin ms, open-bin ms]."""
    table_rows = []
    results = []
    for n_nodes in sizes:
        document = _document(n_nodes)
        xml_text = fuzzy_to_string(document)
        binary = save_binary(document, sequence=1)

        # Correctness first: the image the speedup is measured on must
        # decode to the document it claims to be.
        decoded, sequence = load_binary(binary)
        assert sequence == 1 and decoded.size() == document.size()

        xml_s = _best_of(repeats, lambda: fuzzy_from_string(xml_text))
        bin_s = _best_of(repeats, lambda: load_binary(binary))
        speedup = xml_s / bin_s if bin_s else float("inf")

        # End-to-end: a worker respawn is Warehouse.open, lock and WAL
        # scan included.  The same store, with and without the image.
        path = base / f"cold-{n_nodes}"
        shutil.rmtree(path, ignore_errors=True)
        Warehouse.create(path, document).close()
        image = (path / "document.bin").read_bytes()
        open_bin_s = _best_of(
            repeats, lambda: Warehouse.open(path, observability=None).close()
        )
        (path / "document.bin").unlink()
        open_xml_s = _best_of(
            repeats, lambda: Warehouse.open(path, observability=None).close()
        )
        (path / "document.bin").write_bytes(image)

        table_rows.append(
            [
                n_nodes,
                fmt(xml_s * 1e3),
                fmt(bin_s * 1e3),
                fmt(speedup, 3),
                fmt(open_bin_s * 1e3),
                fmt(open_xml_s * 1e3),
            ]
        )
        results.append(
            {
                "nodes": n_nodes,
                "xml_parse_ms": xml_s * 1e3,
                "binary_decode_ms": bin_s * 1e3,
                "binary_speedup": speedup,
                "open_with_binary_ms": open_bin_s * 1e3,
                "open_without_binary_ms": open_xml_s * 1e3,
            }
        )
    return table_rows, results


# ----------------------------------------------------------------------
# E16b — thread engine vs process engine read throughput
# ----------------------------------------------------------------------


def _build_collection(base: Path, n_docs: int, n_nodes: int):
    """A collection of *n_docs* identical documents plus a query mix.

    Identical content (distinct keys) keeps per-key work uniform, so
    the aggregate measures engine overhead, not workload skew.
    """
    document = _document(n_nodes)
    from collections import Counter

    labels = Counter(node.label for node in document.root.iter())
    patterns = [f"//{label}" for label, _ in labels.most_common(2)]
    path = base / f"coll-{n_docs}x{n_nodes}"
    shutil.rmtree(path, ignore_errors=True)
    with connect_collection(path, create=True, observability=None) as seed:
        for i in range(n_docs):
            seed.create_document(f"doc{i}", document=document)
    keys = [f"doc{i}" for i in range(n_docs)]
    return path, keys, patterns


def _rows(collection, pattern: str, key: str):
    rows = collection.query(pattern, keys=[key]).limit(TOP_K).all()
    return [(row.document, row.tree.canonical(), row.probability) for row in rows]


def _aggregate_qps(collection, keys, patterns, n_threads: int, per_thread: int):
    barrier = threading.Barrier(n_threads + 1)
    errors: list = []

    def client(k: int) -> None:
        try:
            barrier.wait()
            for i in range(per_thread):
                _rows(
                    collection,
                    patterns[(i + k) % len(patterns)],
                    keys[(i + k) % len(keys)],
                )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(repr(exc))

    threads = [
        threading.Thread(target=client, args=(k,)) for k in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    assert not errors, errors
    return n_threads * per_thread / wall


def run_read_throughput(base: Path, configs, repeats: int):
    """E16b rows: [docs x nodes, thread qps, process qps, speedup]."""
    table_rows = []
    results = []
    for n_docs, n_nodes in configs:
        path, keys, patterns = _build_collection(base, n_docs, n_nodes)
        thread_qps = process_qps = 0.0
        with connect_collection(
            path, workers=WORKERS, observability=None
        ) as threads:
            expected = {
                (key, pattern): _rows(threads, pattern, key)
                for key in keys
                for pattern in patterns
            }
            for _ in range(repeats):  # best-of: noise-robust, like E11/E13
                thread_qps = max(
                    thread_qps,
                    _aggregate_qps(threads, keys, patterns, CLIENTS, PER_CLIENT),
                )
        with ProcessCollection(
            path, shard_processes=WORKERS, observability=None
        ) as cluster:
            # Correctness while timing: process rows == thread rows.
            for (key, pattern), rows in expected.items():
                assert _rows(cluster, pattern, key) == rows, (
                    f"process engine diverged from thread engine on "
                    f"{key}/{pattern}"
                )
            for _ in range(repeats):
                process_qps = max(
                    process_qps,
                    _aggregate_qps(cluster, keys, patterns, CLIENTS, PER_CLIENT),
                )
        speedup = process_qps / thread_qps if thread_qps else float("inf")
        table_rows.append(
            [
                f"{n_docs}x{n_nodes}",
                fmt(thread_qps),
                fmt(process_qps),
                fmt(speedup, 3),
            ]
        )
        results.append(
            {
                "docs": n_docs,
                "nodes": n_nodes,
                "workers": WORKERS,
                "clients": CLIENTS,
                "top_k": TOP_K,
                "thread_qps": thread_qps,
                "process_qps": process_qps,
                "process_speedup": speedup,
            }
        )
    return table_rows, results


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

_E16A_HEADERS = [
    "nodes",
    "xml parse ms",
    "bin decode ms",
    "codec speedup",
    "open +bin ms",
    "open -bin ms",
]
_E16B_HEADERS = ["docs x nodes", "thread qps", "process qps", "speedup"]


def _trajectory(cold_json, read_json) -> list[dict]:
    """The medians the CI trajectory gate compares across commits.

    The process-engine qps is emitted only on multi-core hosts: on one
    core its value measures IPC overhead under a serialized scheduler,
    which would make a single-core baseline gate multi-core runs (and
    vice versa) on an apples-to-oranges number.
    """
    entries = []
    for record in cold_json:
        # The decode time alone is gated; the speedup *ratio* divides
        # two small timings and doubles their relative noise — it is
        # asserted in full-mode pytest (at 1200 nodes) instead.
        entries.append(
            {
                "id": f"e16.binary_decode_ms.nodes={record['nodes']}",
                "value": record["binary_decode_ms"],
                "direction": "lower",
            }
        )
    for record in read_json:
        point = f"docs={record['docs']}.nodes={record['nodes']}"
        entries.append(
            {
                "id": f"e16.thread_qps.{point}",
                "value": record["thread_qps"],
                "direction": "higher",
            }
        )
        if (os.cpu_count() or 1) >= 2:
            entries.append(
                {
                    "id": f"e16.process_qps.{point}",
                    "value": record["process_qps"],
                    "direction": "higher",
                }
            )
    return entries


def write_json(payload: dict) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _run_all(base: Path, quick: bool):
    sizes = QUICK_SIZES if quick else SIZES
    repeats = QUICK_REPEATS if quick else REPEATS
    configs = QUICK_THROUGHPUT_CONFIGS if quick else THROUGHPUT_CONFIGS
    cold_rows, cold_json = run_cold_start(base, sizes, repeats)
    read_rows, read_json = run_read_throughput(base, configs, repeats)
    payload = {
        "experiment": "E16",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "cold_start": cold_json,
        "read_throughput": read_json,
        "trajectory": _trajectory(cold_json, read_json),
    }
    return cold_rows, read_rows, payload


def _report(report_table, cold_rows, read_rows) -> None:
    report_table(
        "E16a  cold start: binary snapshot decode vs XML reparse",
        _E16A_HEADERS,
        cold_rows,
    )
    report_table(
        f"E16b  aggregate read throughput: thread engine vs "
        f"{WORKERS} worker processes",
        _E16B_HEADERS,
        read_rows,
    )


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------


def test_process_shards(report, tmp_path, benchmark):
    cold_rows, read_rows, payload = benchmark.pedantic(
        lambda: _run_all(tmp_path, quick=False), rounds=1
    )
    _report(report.table, cold_rows, read_rows)
    write_json(payload)
    at_scale = payload["cold_start"][-1]
    assert at_scale["binary_speedup"] >= _min_binary_speedup(), (
        f"binary snapshot decode {at_scale['binary_speedup']:.2f}x the XML "
        f"parse at {at_scale['nodes']} nodes fell below the "
        f"{_min_binary_speedup()}x floor"
    )
    read = payload["read_throughput"][-1]
    if (os.cpu_count() or 1) >= 2:
        assert read["process_speedup"] >= _min_process_speedup(), (
            f"process-engine throughput {read['process_speedup']:.2f}x the "
            f"thread engine at {read['docs']}x{read['nodes']} fell below the "
            f"{_min_process_speedup()}x floor (cpu_count={os.cpu_count()})"
        )


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------


def _print_table(title: str, headers, rows) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(title)
    print("-" * len(title))
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


def main(argv=None) -> int:
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, fewer docs (CI smoke; no timing assertions)",
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory() as tmp:
        cold_rows, read_rows, payload = _run_all(Path(tmp), quick=args.quick)

    def table(title, headers, rows):
        _print_table(title, headers, rows)

    _report(table, cold_rows, read_rows)
    write_json(payload)
    print(f"machine-readable medians written to {JSON_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
