"""E10 — The slide-19 "perspectives" implemented as extensions.

Two of the paper's future-work items, measured:

* **Negation** — TPWJ patterns with ``!``-subpatterns, evaluated on
  fuzzy trees through condition complements.  The bench closes the
  commutation diagram on random negated queries and measures the
  overhead over the positive-only query.

* **Complexity analysis** — the empirical growth classifier
  (:mod:`repro.analysis.complexity`) applied to the two evaluation
  paths: fuzzy evaluation must classify as polynomial in document
  size; naive possible-worlds evaluation as exponential in the event
  count.
"""

from __future__ import annotations

import random
import time


from repro.analysis import classify_growth, fit_exponential, fit_power_law
from repro import (
    query_possible_worlds,
    to_possible_worlds,
)
from repro.tpwj.parser import parse_pattern
from repro.core.query import query_fuzzy_tree
from repro.tpwj.pattern import PatternNode
from repro.trees import RandomTreeConfig
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree, random_query_for

from conftest import fmt


def negated_instance(seed: int):
    rng = random.Random(seed)
    doc = random_fuzzy_tree(
        rng,
        FuzzyWorkloadConfig(
            tree=RandomTreeConfig(max_nodes=14, max_children=3, max_depth=4),
            n_events=3,
        ),
    )
    pattern = random_query_for(rng, doc.root, max_nodes=3, join_probability=0.0)
    if pattern.root.value is not None:
        return None
    pattern.root.add_child(
        PatternNode(
            rng.choice(["A", "B", "C", "D", "E", "F"]),
            descendant=rng.random() < 0.5,
            negated=True,
        )
    )
    return doc, parse_pattern(str(pattern))


def test_negation_commutation(report, benchmark):
    def sweep():
        checked = 0
        for seed in range(25):
            instance = negated_instance(seed)
            if instance is None:
                continue
            doc, pattern = instance
            via_fuzzy = {
                a.tree.canonical(): a.probability
                for a in query_fuzzy_tree(doc, pattern)
            }
            via_worlds = {
                w.tree.canonical(): w.probability
                for w in query_possible_worlds(to_possible_worlds(doc), pattern)
            }
            assert set(via_fuzzy) == set(via_worlds)
            for key in via_worlds:
                assert abs(via_fuzzy[key] - via_worlds[key]) < 1e-9
            checked += 1
        return checked

    checked = benchmark.pedantic(sweep, rounds=1)
    report.table(
        "E10a  negation extension: commutation diagram",
        ["random negated queries checked", "diagram closes"],
        [[checked, "yes"]],
    )
    assert checked >= 10


def test_negation_overhead(report, benchmark):
    rng = random.Random(77)
    doc = random_fuzzy_tree(
        rng,
        FuzzyWorkloadConfig(
            tree=RandomTreeConfig(max_nodes=80, max_children=4, max_depth=5),
            n_events=5,
        ),
    )
    positive = random_query_for(rng, doc.root, max_nodes=3, join_probability=0.0)
    if positive.root.value is not None:
        positive = random_query_for(rng, doc.root, max_nodes=2, join_probability=0.0)
    negated = parse_pattern(str(positive))
    negated.root.add_child(PatternNode("Z", negated=True))  # absent label: cheap
    heavy = parse_pattern(str(positive))
    heavy.root.add_child(PatternNode(None, descendant=True, negated=True))  # any node

    def run_all():
        times = {}
        for name, pattern in (
            ("positive", positive),
            ("negated (absent)", negated),
            ("negated (wildcard)", heavy),
        ):
            start = time.perf_counter()
            query_fuzzy_tree(doc, pattern)
            times[name] = time.perf_counter() - start
        return times

    times = benchmark.pedantic(run_all, rounds=3)
    report.table(
        "E10b  negation overhead on an 80-node document",
        ["query", "seconds"],
        [[name, fmt(seconds)] for name, seconds in times.items()],
    )


def test_growth_classification(report, benchmark):
    """Fuzzy path: polynomial in nodes.  Worlds path: exponential in events."""

    def classify():
        # Fuzzy evaluation vs document size.
        sizes, fuzzy_times = [], []
        for n_nodes in (40, 80, 160, 320, 640):
            rng = random.Random(50)
            doc = random_fuzzy_tree(
                rng,
                FuzzyWorkloadConfig(
                    tree=RandomTreeConfig(
                        max_nodes=n_nodes,
                        max_children=4,
                        max_depth=7,
                        min_nodes=max(2, n_nodes // 2),
                    ),
                    n_events=5,
                ),
            )
            pattern = random_query_for(rng, doc.root, max_nodes=3, join_probability=0.0)
            start = time.perf_counter()
            for _ in range(3):
                query_fuzzy_tree(doc, pattern)
            fuzzy_times.append((time.perf_counter() - start) / 3)
            sizes.append(doc.size())
        fuzzy_fit = fit_power_law(sizes, fuzzy_times)

        # Naive worlds evaluation vs event count.
        events, worlds_times = [], []
        for n_events in (4, 6, 8, 10, 12):
            rng = random.Random(51)
            doc = random_fuzzy_tree(
                rng,
                FuzzyWorkloadConfig(
                    tree=RandomTreeConfig(
                        max_nodes=30, max_children=3, max_depth=5, min_nodes=15
                    ),
                    n_events=n_events,
                    condition_probability=0.8,
                ),
            )
            pattern = random_query_for(rng, doc.root, max_nodes=3, join_probability=0.0)
            start = time.perf_counter()
            query_possible_worlds(to_possible_worlds(doc), pattern)
            worlds_times.append(time.perf_counter() - start)
            events.append(len(doc.used_events()))
        worlds_fit = fit_exponential(events, worlds_times)
        worlds_class = classify_growth(events, worlds_times)
        return fuzzy_fit, worlds_fit, worlds_class

    fuzzy_fit, worlds_fit, worlds_class = benchmark.pedantic(classify, rounds=1)
    report.table(
        "E10c  empirical growth classification (slide-19 complexity analysis)",
        ["path", "fitted model", "verdict"],
        [
            ["fuzzy query vs nodes", str(fuzzy_fit), "polynomial"],
            ["naive worlds vs events", str(worlds_fit), worlds_class.model],
        ],
    )
    # Shape assertions: the fuzzy path must not look exponential in n,
    # and the worlds path must double (or worse) per added event.
    assert fuzzy_fit.exponent < 3.0
    assert worlds_class.model == "exponential"
    assert worlds_fit.exponent > 0.5
