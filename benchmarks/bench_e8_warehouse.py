"""E8 — The probabilistic XML warehouse end to end (paper, slides 3 & 16).

The architecture diagram: imprecise modules push update transactions
with confidences; consumers query.  The bench drives the warehouse with
the three module simulators (information extraction, data cleaning,
schema matching), measuring update throughput over the stream length
and query latency on the resulting store.
"""

from __future__ import annotations

import time

import pytest

from repro.warehouse import Warehouse
from repro.workloads import CleaningScenario, ExtractionScenario, MatchingScenario

from conftest import fmt

SCENARIOS = {
    "extraction": lambda: ExtractionScenario(seed=30, n_people=6),
    "cleaning": lambda: CleaningScenario(seed=31, n_products=5),
    "matching": lambda: MatchingScenario(seed=32),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_update_throughput(report, tmp_path, benchmark, name):
    scenario = SCENARIOS[name]()

    def run():
        rows = []
        for stream_length in (10, 50, 150):
            path = tmp_path / f"{name}-{stream_length}"
            with Warehouse.create(
                path, scenario.initial_document(), auto_simplify_factor=4.0
            ) as wh:
                transactions = list(scenario.stream(stream_length))
                start = time.perf_counter()
                for tx in transactions:
                    wh._commit_update(tx)
                elapsed = time.perf_counter() - start
                rows.append(
                    [
                        stream_length,
                        fmt(stream_length / elapsed, 4),
                        wh.stats()["nodes"],
                        wh.stats()["used_events"],
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report.table(
        f"E8a  {name} module stream throughput",
        ["transactions", "tx/s", "nodes after", "events used"],
        rows,
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_query_latency_after_stream(report, tmp_path, benchmark, name):
    scenario = SCENARIOS[name]()
    path = tmp_path / name
    with Warehouse.create(path, scenario.initial_document(), auto_simplify_factor=4.0) as wh:
        for tx in scenario.stream(60):
            wh._commit_update(tx)
        patterns = scenario.query_mix()

        def query_all():
            return [wh._query_answers(p) for p in patterns]

        results = benchmark(query_all)
        report.table(
            f"E8b  {name} query mix after 60 transactions",
            ["query", "answers", "top probability"],
            [
                [str(p), len(r), fmt(r[0].probability) if r else "-"]
                for p, r in zip(patterns, results)
            ],
        )


def test_durability_of_stream(report, tmp_path, benchmark):
    """Commit-per-update: reopening reproduces the exact store."""

    def run():
        scenario = ExtractionScenario(seed=33, n_people=4)
        path = tmp_path / "durable"
        with Warehouse.create(path, scenario.initial_document()) as wh:
            for tx in scenario.stream(25):
                wh._commit_update(tx)
            canonical = wh.document.root.canonical()
            sequence = wh.sequence
        with Warehouse.open(path) as wh:
            assert wh.document.root.canonical() == canonical
            assert wh.sequence == sequence
            entries = len(wh.history())
        return sequence, entries

    sequence, entries = benchmark.pedantic(run, rounds=1)
    report.table(
        "E8c  durability after 25 transactions",
        ["committed sequence", "log entries", "reopen matches"],
        [[sequence, entries, "yes"]],
    )
