"""E14 — observability overhead on the E9 query path.

PR 6 attaches an instrument panel (:mod:`repro.obs`) to the warehouse:
latency histograms, hierarchical span traces and a slow-query log,
wired through the engine, the commit pipeline and the session result
stream.  The overhead contract is that the panel is paid for by the
people who read it:

* **enabled** (metrics + tracing on) the query path stays within
  ``E14_MAX_ENABLED_OVERHEAD`` (default **5%**) of the uninstrumented
  baseline;
* **disabled** (panel attached, both flags off) within
  ``E14_MAX_DISABLED_OVERHEAD`` (default **1%**) — hot paths hoist the
  enabled flags into locals once per operation, so the off switch costs
  one comparison per query, not one per row.

The measured workload is E9's: a random fuzzy document and a random
TPWJ query with joins and value tests, evaluated through the session
streaming path (``session.query(...)`` with every row's lazy
probability read — the fully instrumented route).  Three warehouses are
built from the *same* document, differing only in the ``observability``
argument: ``None`` (baseline), a disabled panel, an enabled panel.
Rows must agree across all three on every size — instrumentation can
never change results.

Timing uses the same best-of-N estimator as E11–E13, with the modes
interleaved inside each repeat so clock drift hits all three equally.
Overheads are tiny relative to shared-runner noise, so the pytest
assertions apply to the **best** repeat and the thresholds are
env-overridable; the CI trajectory gate compares the per-query medians
(and the enabled/baseline ratio) with its usual 2.5x slack.

Runs both ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_e14_observability.py \
        -x -q -o python_files="bench_*.py"
    PYTHONPATH=src python benchmarks/bench_e14_observability.py [--quick]

The script form needs no pytest plugins (CI smoke uses ``--quick``)
and always writes machine-readable medians — including the
``trajectory`` entries the CI benchmark-trajectory gate compares —
to ``benchmarks/out/BENCH_E14.json``.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import shutil
import sys
import time
from pathlib import Path

try:
    from conftest import fmt
except ImportError:  # script mode: run outside pytest's rootdir sys.path
    def fmt(value: float, digits: int = 4) -> str:
        return f"{value:.{digits}g}"

from repro.api import connect
from repro.obs import Observability
from repro.trees import RandomTreeConfig
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree, random_query_for

OUT_DIR = Path(__file__).parent / "out"
JSON_PATH = OUT_DIR / "BENCH_E14.json"

SIZES = (300, 1200)
QUICK_SIZES = (300,)
REPEATS = 5
QUICK_REPEATS = 3
ITERATIONS = 60
QUICK_ITERATIONS = 25


def _max_enabled_overhead() -> float:
    return float(os.environ.get("E14_MAX_ENABLED_OVERHEAD", "0.05"))


def _max_disabled_overhead() -> float:
    return float(os.environ.get("E14_MAX_DISABLED_OVERHEAD", "0.01"))


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------


def build_instances(base: Path, n_nodes: int, seed: int = 11):
    """Three warehouses on one document, differing only in the panel.

    Returns ``(sessions, pattern)`` where *sessions* maps mode name to
    an open session: ``baseline`` has no panel at all, ``disabled`` a
    panel with both flags off, ``enabled`` a fully-on panel (fresh,
    private — ring buffers and histograms scoped to this run).
    """
    rng = random.Random(seed)
    document = random_fuzzy_tree(
        rng,
        FuzzyWorkloadConfig(
            tree=RandomTreeConfig(
                max_nodes=n_nodes,
                min_nodes=max(2, n_nodes // 2),
                max_children=5,
                max_depth=7,
            ),
            n_events=4,
        ),
    )
    pattern = random_query_for(
        rng, document.root, max_nodes=5, join_probability=0.8,
        value_test_probability=0.5,
    )
    disabled_panel = Observability()
    disabled_panel.disable()
    panels = {
        "baseline": None,
        "disabled": disabled_panel,
        "enabled": Observability(),
    }
    sessions = {}
    for mode, panel in panels.items():
        path = base / f"e14-{mode}-{n_nodes}"
        shutil.rmtree(path, ignore_errors=True)
        sessions[mode] = connect(
            path, create=True, document=document, observability=panel
        )
    return sessions, pattern


def _run_query(session, pattern):
    """One request on the fully instrumented route: stream every row
    and read its (lazy) probability."""
    return [
        (row.tree.canonical(), row.probability)
        for row in session.query(pattern)
    ]


def _per_query_seconds(session, pattern, iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        _run_query(session, pattern)
    return (time.perf_counter() - start) / iterations


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------


def run_overhead(base: Path, sizes, repeats: int, iterations: int):
    """Rows: [nodes, baseline us, disabled us (+%), enabled us (+%)]."""
    table_rows = []
    results = []
    for n_nodes in sizes:
        sessions, pattern = build_instances(base, n_nodes)
        try:
            # Correctness while timing: identical rows in all modes.
            reference = _run_query(sessions["baseline"], pattern)
            for mode in ("disabled", "enabled"):
                assert _run_query(sessions[mode], pattern) == reference, (
                    f"{mode} instrumentation changed query results "
                    f"at {n_nodes} nodes"
                )
            best = {mode: float("inf") for mode in sessions}
            gc.collect()
            gc.disable()
            try:
                for _ in range(repeats):
                    # Interleaved: drift in one repeat hits every mode.
                    for mode, session in sessions.items():
                        best[mode] = min(
                            best[mode],
                            _per_query_seconds(session, pattern, iterations),
                        )
            finally:
                gc.enable()
        finally:
            for session in sessions.values():
                session.close()
        record = {
            "nodes": n_nodes,
            "rows": len(reference),
            "iterations": iterations,
            "baseline_us": best["baseline"] * 1e6,
            "disabled_us": best["disabled"] * 1e6,
            "enabled_us": best["enabled"] * 1e6,
            "disabled_overhead": best["disabled"] / best["baseline"] - 1.0,
            "enabled_overhead": best["enabled"] / best["baseline"] - 1.0,
        }
        results.append(record)
        table_rows.append(
            [
                n_nodes,
                fmt(record["baseline_us"]),
                f"{fmt(record['disabled_us'])} "
                f"({record['disabled_overhead'] * 100:+.1f}%)",
                f"{fmt(record['enabled_us'])} "
                f"({record['enabled_overhead'] * 100:+.1f}%)",
            ]
        )
    return table_rows, results


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

_HEADERS = ["nodes", "baseline us", "disabled us", "enabled us"]


def _trajectory(records) -> list[dict]:
    """The medians the CI trajectory gate compares across commits.

    Gated: the per-query medians for all three modes (a planner or
    streaming regression shows up in every one) and the
    enabled/baseline *ratio* — the overhead contract itself.  The
    ratio hovers near 1.0, so the gate's 2.5x slack fires only when
    instrumentation cost blows up outright.
    """
    entries = []
    for record in records:
        for mode in ("baseline", "disabled", "enabled"):
            entries.append(
                {
                    "id": f"e14.query_us.{mode}.nodes={record['nodes']}",
                    "value": record[f"{mode}_us"],
                    "direction": "lower",
                }
            )
        entries.append(
            {
                "id": f"e14.enabled_ratio.nodes={record['nodes']}",
                "value": record["enabled_us"] / record["baseline_us"],
                "direction": "lower",
            }
        )
    return entries


def write_json(payload: dict) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _run_all(base: Path, sizes, repeats: int, iterations: int, quick: bool):
    table_rows, records = run_overhead(base, sizes, repeats, iterations)
    payload = {
        "experiment": "E14",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "overhead": records,
        "trajectory": _trajectory(records),
    }
    return table_rows, payload


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------


def test_observability_overhead(report, tmp_path, benchmark):
    table_rows, payload = benchmark.pedantic(
        lambda: _run_all(tmp_path, SIZES, REPEATS, ITERATIONS, quick=False),
        rounds=1,
    )
    report.table(
        "E14  observability overhead on the E9 query path "
        "(streamed rows + lazy probabilities)",
        _HEADERS,
        table_rows,
    )
    write_json(payload)
    at_scale = payload["overhead"][-1]
    assert at_scale["enabled_overhead"] <= _max_enabled_overhead(), (
        f"enabled instrumentation cost "
        f"{at_scale['enabled_overhead'] * 100:.1f}% at "
        f"{at_scale['nodes']} nodes, over the "
        f"{_max_enabled_overhead() * 100:.0f}% contract "
        "(override with E14_MAX_ENABLED_OVERHEAD on noisy runners)"
    )
    assert at_scale["disabled_overhead"] <= _max_disabled_overhead(), (
        f"disabled instrumentation cost "
        f"{at_scale['disabled_overhead'] * 100:.1f}% at "
        f"{at_scale['nodes']} nodes, over the "
        f"{_max_disabled_overhead() * 100:.0f}% contract "
        "(override with E14_MAX_DISABLED_OVERHEAD on noisy runners)"
    )


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------


def _print_table(title: str, headers, rows) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(title)
    print("-" * len(title))
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


def main(argv=None) -> int:
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small size, fewer repeats (CI smoke; no timing assertions)",
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else SIZES
    repeats = QUICK_REPEATS if args.quick else REPEATS
    iterations = QUICK_ITERATIONS if args.quick else ITERATIONS
    with tempfile.TemporaryDirectory() as tmp:
        table_rows, payload = _run_all(
            Path(tmp), sizes, repeats, iterations, quick=args.quick
        )
    _print_table(
        "E14  observability overhead on the E9 query path "
        "(streamed rows + lazy probabilities)",
        _HEADERS,
        table_rows,
    )
    write_json(payload)
    print(f"machine-readable medians written to {JSON_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
