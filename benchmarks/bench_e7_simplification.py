"""E7 — Fuzzy data simplification (paper, slide 19 perspectives).

After a stream of probabilistic updates the document accumulates
survivor copies, redundant literals and dead events.  The bench
measures how much each simplification rule recovers (rule ablation),
verifies semantics preservation, and times full simplification.
"""

from __future__ import annotations

import random

import pytest

from repro import simplify, to_possible_worlds
from repro.core.update import apply_update
from repro.core.simplify import ALL_RULES
from repro.trees import RandomTreeConfig
from repro.workloads import (
    CleaningScenario,
    FuzzyWorkloadConfig,
    random_fuzzy_tree,
    random_update_for,
)


def battered_document(seed: int = 9, updates: int = 6):
    """A random document after several uncertain updates."""
    rng = random.Random(seed)
    doc = random_fuzzy_tree(
        rng,
        FuzzyWorkloadConfig(
            tree=RandomTreeConfig(max_nodes=15, max_children=3, max_depth=4),
            n_events=2,
        ),
    )
    for _ in range(updates):
        apply_update(doc, random_update_for(rng, doc, confidence=0.8))
    return doc


def test_rule_ablation(report, benchmark):
    def run():
        rows = []
        baseline = battered_document()
        rows.append(
            ["(none)", baseline.size(), baseline.condition_literal_count(), len(baseline.events)]
        )
        for rule in ALL_RULES:
            doc = battered_document()
            simplify(doc, rules=(rule,))
            rows.append([rule, doc.size(), doc.condition_literal_count(), len(doc.events)])
        doc = battered_document()
        simplify(doc)
        rows.append(["ALL", doc.size(), doc.condition_literal_count(), len(doc.events)])
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report.table(
        "E7a  simplification rule ablation (after 6 uncertain updates)",
        ["rules", "nodes", "condition literals", "events"],
        rows,
    )
    all_nodes = rows[-1][1]
    none_nodes = rows[0][1]
    assert all_nodes <= none_nodes


def test_semantics_preserved_on_cleaning_stream(report, benchmark):
    def run():
        scenario = CleaningScenario(seed=10, n_products=3, duplicate_rate=1.0)
        doc = scenario.initial_document()
        for tx in scenario.stream(4):
            apply_update(doc, tx)
        before_worlds = to_possible_worlds(doc)
        before_nodes = doc.size()
        simplify_report = simplify(doc)
        return doc, before_worlds, before_nodes, simplify_report

    doc, before_worlds, before_nodes, simplify_report = benchmark.pedantic(run, rounds=1)
    assert to_possible_worlds(doc).same_distribution(before_worlds, 1e-9)
    report.table(
        "E7b  dedup stream then simplify (distribution preserved: yes)",
        ["nodes before", "nodes after", "literals before", "literals after", "events collected"],
        [[
            before_nodes,
            doc.size(),
            simplify_report.literals_before,
            simplify_report.literals_after,
            simplify_report.collected_events,
        ]],
    )


@pytest.mark.parametrize("updates", [2, 4, 6])
def test_simplify_cost(benchmark, updates):
    doc = battered_document(updates=updates)
    benchmark.pedantic(lambda: simplify(doc.clone()), rounds=5)
