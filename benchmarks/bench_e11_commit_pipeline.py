"""E11 — the incremental commit pipeline (WAL + snapshot/delta).

The seed warehouse serialized and fsynced the whole fuzzy document on
every commit; the pipeline appends one checksummed WAL record instead
and snapshots periodically.  This experiment measures what that buys:

* **E11a** — single-update commit latency, full-rewrite policy
  (``snapshot_every=1``, the seed behaviour) vs. the WAL pipeline,
  across document sizes;
* **E11b** — batched commits (``update_many``): per-transaction
  latency across batch widths;
* **E11c** — recovery: time to ``Warehouse.open`` with N WAL records
  to replay vs. a compacted store, and fidelity of the replayed
  document.

Runs both ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_e11_commit_pipeline.py \
        -x -q -o python_files="bench_*.py"
    PYTHONPATH=src python benchmarks/bench_e11_commit_pipeline.py [--quick]

The script form needs no pytest plugins (CI smoke uses ``--quick``)
and always writes machine-readable medians — including the
``trajectory`` entries the CI benchmark-trajectory gate compares — to
``benchmarks/out/BENCH_E11.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

try:
    from conftest import fmt
except ImportError:  # script mode: run outside pytest's rootdir sys.path
    def fmt(value: float, digits: int = 4) -> str:
        return f"{value:.{digits}g}"

from repro import InsertOperation, UpdateTransaction
from repro.tpwj.parser import parse_pattern
from repro.trees import tree
from repro.trees.random import RandomTreeConfig
from repro.warehouse import CommitPolicy, Warehouse
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree

OUT_DIR = Path(__file__).parent / "out"
JSON_PATH = OUT_DIR / "BENCH_E11.json"

SIZES = (150, 400, 1200)
QUICK_SIZES = (150,)
BATCH_WIDTHS = (1, 8, 32)

# The workload isolates commit cost: a root-anchored single-node query
# (one match, no backtracking) inserting a two-node subtree.  Matching
# cost is identical under both policies, so the latency difference is
# the persistence path.
_WAL_POLICY = lambda: CommitPolicy(snapshot_every=64)  # noqa: E731
_REWRITE_POLICY = lambda: CommitPolicy(snapshot_every=1)  # noqa: E731


def _make_document(n_nodes: int, seed: int):
    config = FuzzyWorkloadConfig(
        tree=RandomTreeConfig(
            max_nodes=n_nodes,
            min_nodes=max(1, int(n_nodes * 0.9)),
            max_depth=10,
        ),
        n_events=6,
    )
    return random_fuzzy_tree(random.Random(seed), config)


def _commit_tx(document) -> UpdateTransaction:
    return UpdateTransaction(
        parse_pattern(f"/{document.root.label}[$r]"),
        [InsertOperation("r", tree("Xnew", tree("Ynew")))],
        0.9,
    )


def _measure_commit_latency(
    base: Path,
    n_nodes: int,
    policy: CommitPolicy,
    n_tx: int,
    seed: int = 42,
    repeats: int = 3,
) -> float:
    """Seconds per single-update commit: best of *repeats* medians.

    The median across commits absorbs per-commit jitter; the best of
    several fresh runs absorbs machine-load noise (same estimator the
    E9 numbers used).
    """
    medians = []
    for attempt in range(repeats):
        document = _make_document(n_nodes, seed)
        tx = _commit_tx(document)
        path = base / f"commit-{n_nodes}-{policy.snapshot_every}-{attempt}"
        shutil.rmtree(path, ignore_errors=True)
        warehouse = Warehouse.create(path, document, policy=policy)
        timings = []
        for _ in range(n_tx):
            start = time.perf_counter()
            warehouse._commit_update(tx)
            timings.append(time.perf_counter() - start)
        warehouse.close()
        medians.append(statistics.median(timings))
    return min(medians)


def _measure_batch_latency(
    base: Path, n_nodes: int, width: int, n_tx: int, seed: int = 42, repeats: int = 3
) -> float:
    """Seconds per transaction when committed in batches of *width*
    (best of *repeats* fresh runs, like E11a)."""
    results = []
    for attempt in range(repeats):
        document = _make_document(n_nodes, seed)
        tx = _commit_tx(document)
        path = base / f"batch-{n_nodes}-{width}-{attempt}"
        shutil.rmtree(path, ignore_errors=True)
        warehouse = Warehouse.create(path, document, policy=_WAL_POLICY())
        committed = 0
        start = time.perf_counter()
        while committed < n_tx:
            chunk = min(width, n_tx - committed)
            warehouse.update_many([tx] * chunk)
            committed += chunk
        results.append((time.perf_counter() - start) / n_tx)
        warehouse.close()
    return min(results)


def _measure_recovery(
    base: Path, n_nodes: int, n_records: int, seed: int = 42
) -> tuple[float, float, bool]:
    """(replay open seconds, compacted open seconds, replay faithful)."""
    document = _make_document(n_nodes, seed)
    tx = _commit_tx(document)
    path = base / f"recovery-{n_nodes}"
    shutil.rmtree(path, ignore_errors=True)
    policy = CommitPolicy(snapshot_every=10 * n_records, compact_on_close=False)
    warehouse = Warehouse.create(path, document, policy=policy)
    for _ in range(n_records):
        warehouse._commit_update(tx)
    expected = warehouse.document.root.canonical()
    # Simulate a crash: the lock evaporates, nothing is compacted.
    warehouse._storage.release_lock()
    warehouse._closed = True

    start = time.perf_counter()
    recovered = Warehouse.open(path, policy=policy)
    replay_open = time.perf_counter() - start
    faithful = recovered.document.root.canonical() == expected
    recovered.compact()
    recovered.close()

    start = time.perf_counter()
    Warehouse.open(path).close()
    compacted_open = time.perf_counter() - start
    return replay_open, compacted_open, faithful


def run_commit_latency(base: Path, sizes, n_tx: int):
    rows = []
    results = []
    for n_nodes in sizes:
        rewrite = _measure_commit_latency(base, n_nodes, _REWRITE_POLICY(), n_tx)
        wal = _measure_commit_latency(base, n_nodes, _WAL_POLICY(), n_tx)
        rows.append(
            [
                n_nodes,
                fmt(rewrite * 1e6),
                fmt(wal * 1e6),
                fmt(rewrite / wal, 3),
            ]
        )
        results.append(
            {
                "nodes": n_nodes,
                "rewrite_us_per_commit": rewrite * 1e6,
                "wal_us_per_commit": wal * 1e6,
                "speedup": rewrite / wal,
            }
        )
    return rows, results


def write_json(payload: dict) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def run_batch_latency(base: Path, sizes, n_tx: int):
    rows = []
    for n_nodes in sizes:
        per_width = [
            _measure_batch_latency(base, n_nodes, width, n_tx)
            for width in BATCH_WIDTHS
        ]
        rows.append([n_nodes] + [fmt(seconds * 1e6) for seconds in per_width])
    return rows


def run_recovery(base: Path, sizes, n_records: int):
    rows = []
    for n_nodes in sizes:
        replay_open, compacted_open, faithful = _measure_recovery(
            base, n_nodes, n_records
        )
        rows.append(
            [
                n_nodes,
                n_records,
                fmt(replay_open * 1e3),
                fmt(compacted_open * 1e3),
                "yes" if faithful else "NO",
            ]
        )
        assert faithful, f"replay diverged at {n_nodes} nodes"
    return rows


_COMMIT_HEADERS = ["nodes", "rewrite us/commit", "wal us/commit", "speedup"]
_BATCH_HEADERS = ["nodes"] + [f"width {w} (us/tx)" for w in BATCH_WIDTHS]
_RECOVERY_HEADERS = [
    "nodes",
    "wal records",
    "replay open (ms)",
    "compacted open (ms)",
    "faithful",
]


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def _min_speedup() -> float:
    # Shared CI runners are noisy and fsync-heavy filesystems compress
    # the ratio; the floor is a regression tripwire, not the headline
    # (measured dev numbers live in CHANGES.md).
    return float(os.environ.get("E11_MIN_SPEEDUP", "2.0"))


def test_commit_latency(report, tmp_path, benchmark):
    rows, results = benchmark.pedantic(
        lambda: run_commit_latency(tmp_path, SIZES, n_tx=40), rounds=1
    )
    report.table("E11a  single-update commit latency", _COMMIT_HEADERS, rows)
    largest = rows[-1]
    assert float(largest[3]) >= _min_speedup(), (
        f"WAL pipeline speedup {largest[3]}x at {largest[0]} nodes fell "
        f"below the {_min_speedup()}x floor"
    )


def test_batch_commit_latency(report, tmp_path, benchmark):
    rows = benchmark.pedantic(
        lambda: run_batch_latency(tmp_path, SIZES, n_tx=64), rounds=1
    )
    report.table(
        "E11b  batched commit latency (update_many)", _BATCH_HEADERS, rows
    )
    for row in rows:
        # Wider batches must not be slower per transaction than width 1.
        assert float(row[-1]) <= float(row[1]) * 1.25


def test_recovery_replay(report, tmp_path, benchmark):
    rows = benchmark.pedantic(
        lambda: run_recovery(tmp_path, SIZES, n_records=30), rounds=1
    )
    report.table("E11c  recovery: replay vs compacted open", _RECOVERY_HEADERS, rows)


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------


def _print_table(title: str, headers, rows) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(title)
    print("-" * len(title))
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, few transactions (CI smoke; no timing assertions)",
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else SIZES
    n_tx = 10 if args.quick else 40
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)
        commit_rows, commit_results = run_commit_latency(base, sizes, n_tx)
        _print_table(
            "E11a  single-update commit latency",
            _COMMIT_HEADERS,
            commit_rows,
        )
        _print_table(
            "E11b  batched commit latency (update_many)",
            _BATCH_HEADERS,
            run_batch_latency(base, sizes, max(n_tx, 16)),
        )
        _print_table(
            "E11c  recovery: replay vs compacted open",
            _RECOVERY_HEADERS,
            run_recovery(base, sizes, n_records=10 if args.quick else 30),
        )
    write_json(
        {
            "experiment": "E11",
            "metric": "commit_us",
            "quick": args.quick,
            "commit_latency": commit_results,
            "trajectory": [
                {
                    "id": f"e11.wal_us_per_commit.nodes={record['nodes']}",
                    "value": record["wal_us_per_commit"],
                    "direction": "lower",
                }
                for record in commit_results
            ],
        }
    )
    print(f"machine-readable medians written to {JSON_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
