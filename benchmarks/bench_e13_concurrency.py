"""E13 — the concurrent serving layer (threads over snapshot pins).

PR 3 built O(1) copy-on-write snapshot pins; the serving layer puts
threads on top: readers pin a generation and run lock-free on the
frozen tree while a writer commits through the warehouse's write lock,
and all engine caches (plans, document walk, ancestor-condition index,
Shannon memo) are shared across threads.  This experiment measures
what that buys on one warehouse document:

* **E13a — aggregate read throughput.**  8 reader threads hammering
  the serving layer (shared thread-safe engine, warm caches) vs. the
  only previously thread-safe architecture: *per-request isolation*,
  where every request pins a snapshot and builds its own private
  engine (stats walk + interval numbering + condition index per
  request — exactly what ``Snapshot`` did before the serving layer).
  The serving layer must deliver ≥ 4× that baseline's throughput
  (``E13_MIN_READ_SPEEDUP``).  Single-thread serving throughput is
  reported alongside: under the GIL the 8-thread aggregate tracks it,
  the win comes from cache sharing, not core parallelism.  On hosts
  with ≥ 2 cores a *process-engine* comparison point runs too — the
  same document served through a PR 8
  :class:`~repro.serve.cluster.ProcessCollection` (2 workers) — to
  place the thread engine against the architecture that does buy core
  parallelism; E16 prices that engine in depth.  Single-core hosts
  report ``n/a`` (the number would measure IPC overhead under a
  serialized scheduler, not an engine).

* **E13b — writer latency under read traffic.**  A writer commits
  single WAL updates while 8 reader threads sustain query traffic in
  the serving shape: each reader holds a pinned snapshot, queries it
  at a closed-loop pace, and refreshes the snapshot on a TTL —
  bounded-staleness replicas, the architecture the snapshot API
  exists for.  (Readers chasing the live head would rebuild the O(n)
  document walk after *every* commit; the frozen per-root view of a
  held snapshot stays warm.)  The contended p99 commit latency must
  stay ≤ 3× the *uncontended median* measured in the same run (the
  E11 "WAL µs/commit" number re-measured in situ);
  ``E13_MAX_WRITER_P99_RATIO`` overrides the ceiling.  The commit
  policy defers snapshots (``snapshot_every`` huge) so the tail
  measures commit latency, not periodic compaction — E11c prices
  compaction separately.

  **Single-core caveat.**  With one hardware thread the GIL
  round-robins every runnable thread at the switch interval
  (default 5 ms), so *any* reader CPU burst that collides with a
  commit costs the writer (runnable threads × interval) — a property
  of the scheduler, not of the warehouse's locking.  On such hosts
  the pytest assertion falls back to a relaxed ceiling
  (``E13_MAX_WRITER_P99_RATIO_1CPU``) and says so; the JSON records
  ``cpu_count`` next to the measured ratios.

Both experiments verify correctness while timing: serving-path rows
must agree with the isolated baseline's rows (tree and probability) on
every size.

Runs both ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_e13_concurrency.py \
        -x -q -o python_files="bench_*.py"
    PYTHONPATH=src python benchmarks/bench_e13_concurrency.py [--quick]

The script form needs no pytest plugins (CI smoke uses ``--quick``)
and always writes machine-readable medians — including the
``trajectory`` entries the CI benchmark-trajectory gate compares —
to ``benchmarks/out/BENCH_E13.json``.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import random
import shutil
import sys
import threading
import time
from collections import Counter
from pathlib import Path

try:
    from conftest import fmt
except ImportError:  # script mode: run outside pytest's rootdir sys.path
    def fmt(value: float, digits: int = 4) -> str:
        return f"{value:.{digits}g}"

from repro import InsertOperation, UpdateTransaction
from repro.api import connect
from repro.core.query import iter_query_rows
from repro.engine import QueryEngine
from repro.tpwj.parser import parse_pattern
from repro.trees import tree
from repro.trees.random import RandomTreeConfig
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree

OUT_DIR = Path(__file__).parent / "out"
JSON_PATH = OUT_DIR / "BENCH_E13.json"

SIZES = (300, 1200)
QUICK_SIZES = (300,)
READERS = 8
TOP_K = 10
#: Closed-loop reader think time (seconds) between queries in the
#: writer-latency experiment.
READER_PACE = 0.1
#: How long a reader serves from one pinned snapshot before
#: refreshing it (bounded staleness).
SNAPSHOT_TTL = 1.0
REPEATS = 3
# Two quick repeats, not one: the trajectory gate compares the
# contended p99 — a tail statistic jumpy enough under GIL scheduling
# that a single sample would flirt with the gate's 2.5x slack.
QUICK_REPEATS = 2


def _min_read_speedup() -> float:
    # Acceptance floor: 8-thread serving throughput vs the per-request
    # isolation baseline.  Overridable for noisy shared runners.
    return float(os.environ.get("E13_MIN_READ_SPEEDUP", "4.0"))


def _max_writer_p99_ratio() -> float:
    # Acceptance ceiling: contended p99 commit latency over the
    # uncontended median (the in-run E11 number).  On a single
    # hardware thread the measured tail is GIL round-robin scheduling,
    # not warehouse locking (see module docstring), so the ceiling
    # relaxes there.
    if (os.cpu_count() or 1) >= 2:
        return float(os.environ.get("E13_MAX_WRITER_P99_RATIO", "3.0"))
    return float(os.environ.get("E13_MAX_WRITER_P99_RATIO_1CPU", "30.0"))


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------


def build_session(base: Path, n_nodes: int, seed: int = 7):
    """A served warehouse on a random fuzzy document, plus a query mix.

    The commit policy defers snapshots so E13b's tail measures the WAL
    commit path (compaction spikes are E11c's subject).
    """
    rng = random.Random(seed)
    config = FuzzyWorkloadConfig(
        tree=RandomTreeConfig(
            max_nodes=n_nodes,
            min_nodes=max(1, int(n_nodes * 0.9)),
            max_depth=10,
        ),
        n_events=6,
    )
    document = random_fuzzy_tree(rng, config)
    path = base / f"serve-{n_nodes}"
    shutil.rmtree(path, ignore_errors=True)
    session = connect(
        path, create=True, document=document, snapshot_every=1_000_000
    )
    labels = Counter(node.label for node in session.document.root.iter())
    queries = [
        parse_pattern(f"//{label}") for label, _ in labels.most_common(2)
    ]
    transaction = UpdateTransaction(
        parse_pattern(f"/{session.document.root.label}[$r]"),
        [InsertOperation("r", tree("Xnew", tree("Ynew")))],
        0.9,
    )
    return session, queries, transaction


def _serve_query(session, query):
    """One serving-layer request: top-k rows, probabilities included."""
    rows = session.query(query).limit(TOP_K).all()
    return [(row.tree.canonical(), row.probability) for row in rows]


def _isolated_query(session, query):
    """One per-request-isolated request: the pre-serving architecture.

    Pins a snapshot and evaluates with a *private* engine — the stats
    walk, interval numbering and ancestor-condition index are rebuilt
    for every request, and the Shannon memo dies with it.
    """
    with session.snapshot() as snap:
        document = snap.document
        engine = QueryEngine(lambda: document.root)
        rows = list(
            iter_query_rows(document, query, engine=engine, limit=TOP_K)
        )
        return [(row.tree.canonical(), row.probability) for row in rows]


# ----------------------------------------------------------------------
# E13a — aggregate read throughput
# ----------------------------------------------------------------------


def _serving_qps(
    session, queries, n_threads: int, per_thread: int, query_fn=_serve_query
) -> float:
    barrier = threading.Barrier(n_threads + 1)
    errors: list = []

    def worker(k: int) -> None:
        try:
            barrier.wait()
            for i in range(per_thread):
                query_fn(session, queries[(i + k) % len(queries)])
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(repr(exc))

    threads = [
        threading.Thread(target=worker, args=(k,)) for k in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    assert not errors, errors
    return n_threads * per_thread / wall


def _isolated_qps(session, queries, count: int) -> float:
    start = time.perf_counter()
    for i in range(count):
        _isolated_query(session, queries[i % len(queries)])
    wall = time.perf_counter() - start
    return count / wall


def _process_point(base, session, queries, n_nodes, repeats, per_thread):
    """8-client qps through the PR 8 process engine on the same document.

    Returns None on single-core hosts — see the module docstring.
    """
    if (os.cpu_count() or 1) < 2:
        return None
    from repro.serve import ProcessCollection, connect_collection

    path = base / f"cluster-{n_nodes}"
    shutil.rmtree(path, ignore_errors=True)
    with connect_collection(path, create=True, observability=None) as seed:
        seed.create_document("doc", document=session.document)

    def cluster_query(cluster, query):
        rows = cluster.query(query, keys=["doc"]).limit(TOP_K).all()
        return [(row.tree.canonical(), row.probability) for row in rows]

    with ProcessCollection(
        path, shard_processes=2, observability=None
    ) as cluster:
        for query in queries:  # same rows through the pipe as in-process
            assert cluster_query(cluster, query) == _serve_query(session, query)
        best = 0.0
        for _ in range(repeats):
            best = max(
                best,
                _serving_qps(
                    cluster, queries, READERS, per_thread, query_fn=cluster_query
                ),
            )
    return best


def run_read_throughput(base: Path, sizes, repeats: int, per_thread: int):
    """E13a rows: [nodes, baseline qps, serving 1t qps, serving 8t qps,
    speedup, process 2w qps]."""
    table_rows = []
    results = []
    for n_nodes in sizes:
        session, queries, _ = build_session(base, n_nodes)
        try:
            # Correctness while timing: serving rows == isolated rows.
            for query in queries:
                assert _serve_query(session, query) == _isolated_query(
                    session, query
                ), f"serving path diverged from isolated baseline at {n_nodes}"
            serving_8t = serving_1t = baseline = 0.0
            for _ in range(repeats):  # best-of: noise-robust, like E11/E12
                serving_8t = max(
                    serving_8t, _serving_qps(session, queries, READERS, per_thread)
                )
                serving_1t = max(
                    serving_1t,
                    _serving_qps(session, queries, 1, per_thread * 2),
                )
                baseline = max(
                    baseline, _isolated_qps(session, queries, max(10, per_thread // 2))
                )
            process_qps = _process_point(
                base, session, queries, n_nodes, repeats, per_thread
            )
        finally:
            session.close()
        speedup = serving_8t / baseline if baseline else float("inf")
        table_rows.append(
            [
                n_nodes,
                fmt(baseline),
                fmt(serving_1t),
                fmt(serving_8t),
                fmt(speedup, 3),
                fmt(process_qps) if process_qps is not None else "n/a",
            ]
        )
        results.append(
            {
                "nodes": n_nodes,
                "readers": READERS,
                "top_k": TOP_K,
                "isolated_baseline_qps": baseline,
                "serving_1t_qps": serving_1t,
                "serving_8t_qps": serving_8t,
                "speedup_vs_isolated": speedup,
                "process_2w_qps": process_qps,
            }
        )
    return table_rows, results


# ----------------------------------------------------------------------
# E13b — writer latency under read traffic
# ----------------------------------------------------------------------


def _percentile(samples: list[float], p: float) -> float:
    ranked = sorted(samples)
    return ranked[min(len(ranked) - 1, round(len(ranked) * p))]


def _commit_latencies(session, transaction, n_commits: int) -> list[float]:
    latencies = []
    for _ in range(n_commits):
        start = time.perf_counter()
        session.update(transaction)
        latencies.append(time.perf_counter() - start)
    return latencies


def _snapshot_reader(session, queries, stop, k: int, query_count, errors) -> None:
    """One serving replica: query a pinned snapshot, refresh on a TTL."""
    try:
        stop.wait(SNAPSHOT_TTL * k / READERS)  # desynchronize refresh phases
        i = 0
        while not stop.is_set():
            with session.snapshot() as snap:
                refreshed = time.monotonic()
                while (
                    not stop.is_set()
                    and time.monotonic() - refreshed < SNAPSHOT_TTL
                ):
                    rows = snap.query(queries[i % len(queries)]).limit(TOP_K)
                    for row in rows:
                        row.probability
                    query_count[k] += 1
                    i += 1
                    stop.wait(READER_PACE)
    except Exception as exc:  # pragma: no cover - failure path
        errors.append(repr(exc))


def run_writer_latency(base: Path, sizes, repeats: int, n_commits: int):
    """E13b rows: [nodes, unc p50, unc p99, con p50, con p99, p99/unc p50].

    Every repeat measures a **fresh** store (the document grows by two
    nodes per commit; reusing one store would price ever-larger
    documents) and the best repeat is kept — the same best-of-N noise
    estimator E11/E12 use, which matters double here because GIL
    scheduling makes individual tails jumpy.
    """
    table_rows = []
    results = []
    for n_nodes in sizes:
        best = None
        for attempt in range(repeats):
            session, queries, transaction = build_session(
                base, n_nodes, seed=7 + attempt
            )
            try:
                for query in queries:  # warm the shared caches
                    _serve_query(session, query)
                # Cyclic-GC pauses (several ms on a tree-heavy heap)
                # would dominate both tails and drown the contention
                # signal this experiment isolates.
                gc.collect()
                gc.disable()
                uncontended = _commit_latencies(session, transaction, n_commits)
                stop = threading.Event()
                errors: list = []
                query_count = [0] * READERS
                threads = [
                    threading.Thread(
                        target=_snapshot_reader,
                        args=(session, queries, stop, k, query_count, errors),
                    )
                    for k in range(READERS)
                ]
                for thread in threads:
                    thread.start()
                time.sleep(0.3)  # let the read traffic reach steady state
                start = time.perf_counter()
                contended = _commit_latencies(session, transaction, n_commits)
                window = time.perf_counter() - start
                stop.set()
                for thread in threads:
                    thread.join()
                assert not errors, errors
            finally:
                gc.enable()
                session.close()
            sample = {
                "uncontended_p50_us": _percentile(uncontended, 0.5) * 1e6,
                "uncontended_p99_us": _percentile(uncontended, 0.99) * 1e6,
                "contended_p50_us": _percentile(contended, 0.5) * 1e6,
                "contended_p99_us": _percentile(contended, 0.99) * 1e6,
                "read_qps_during": sum(query_count) / (window + 0.3),
            }
            sample["p99_over_uncontended_median"] = (
                sample["contended_p99_us"] / sample["uncontended_p50_us"]
            )
            sample["p99_over_uncontended_p99"] = (
                sample["contended_p99_us"] / sample["uncontended_p99_us"]
            )
            if (
                best is None
                or sample["p99_over_uncontended_median"]
                < best["p99_over_uncontended_median"]
            ):
                best = sample
        best["nodes"] = n_nodes
        best["readers"] = READERS
        best["reader_pace_ms"] = READER_PACE * 1e3
        best["snapshot_ttl_s"] = SNAPSHOT_TTL
        table_rows.append(
            [
                n_nodes,
                fmt(best["uncontended_p50_us"]),
                fmt(best["uncontended_p99_us"]),
                fmt(best["contended_p50_us"]),
                fmt(best["contended_p99_us"]),
                fmt(best["p99_over_uncontended_median"], 3),
            ]
        )
        results.append(best)
    return table_rows, results


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

_E13A_HEADERS = [
    "nodes",
    "isolated qps",
    "serving 1t qps",
    "serving 8t qps",
    "speedup",
    "process 2w qps",
]
_E13B_HEADERS = [
    "nodes",
    "unc p50 us",
    "unc p99 us",
    "con p50 us",
    "con p99 us",
    "p99 / unc median",
]


def _trajectory(read_json, writer_json) -> list[dict]:
    """The medians the CI trajectory gate compares across commits.

    Gated: the serving throughput (stable across runs) and the
    *uncontended* commit median (the in-run E11 number).  The contended
    p99 stays in ``writer_latency`` for humans but is deliberately not
    gated — a tail statistic under GIL scheduling swings across the
    whole 2.5x slack between identical runs and would cry wolf.
    """
    entries = []
    for record in read_json:
        entries.append(
            {
                "id": f"e13.serving_8t_qps.nodes={record['nodes']}",
                "value": record["serving_8t_qps"],
                "direction": "higher",
            }
        )
        if record.get("process_2w_qps") is not None:
            # Multi-core hosts only (see _process_point): a single-core
            # baseline must never gate the process engine.
            entries.append(
                {
                    "id": f"e13.process_2w_qps.nodes={record['nodes']}",
                    "value": record["process_2w_qps"],
                    "direction": "higher",
                }
            )
    for record in writer_json:
        entries.append(
            {
                "id": f"e13.uncontended_p50_us.nodes={record['nodes']}",
                "value": record["uncontended_p50_us"],
                "direction": "lower",
            }
        )
    return entries


def write_json(payload: dict) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _run_all(base: Path, sizes, repeats: int, quick: bool):
    per_thread = 20 if quick else 40
    n_commits = 60 if quick else 300
    read_rows, read_json = run_read_throughput(base, sizes, repeats, per_thread)
    writer_rows, writer_json = run_writer_latency(base, sizes, repeats, n_commits)
    payload = {
        "experiment": "E13",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "read_throughput": read_json,
        "writer_latency": writer_json,
        "trajectory": _trajectory(read_json, writer_json),
    }
    return read_rows, writer_rows, payload


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_concurrent_serving(report, tmp_path, benchmark):
    read_rows, writer_rows, payload = benchmark.pedantic(
        lambda: _run_all(tmp_path, SIZES, REPEATS, quick=False), rounds=1
    )
    report.table(
        f"E13a  read throughput: serving layer ({READERS} threads, shared "
        "caches) vs per-request isolation",
        _E13A_HEADERS,
        read_rows,
    )
    report.table(
        f"E13b  writer latency under {READERS} paced readers "
        f"({READER_PACE * 1e3:.0f} ms think time)",
        _E13B_HEADERS,
        writer_rows,
    )
    write_json(payload)
    at_scale = payload["read_throughput"][-1]
    assert at_scale["speedup_vs_isolated"] >= _min_read_speedup(), (
        f"serving-layer speedup {at_scale['speedup_vs_isolated']:.2f}x at "
        f"{at_scale['nodes']} nodes fell below the "
        f"{_min_read_speedup()}x floor"
    )
    writer_at_scale = payload["writer_latency"][-1]
    ceiling = _max_writer_p99_ratio()
    assert writer_at_scale["p99_over_uncontended_median"] <= ceiling, (
        f"contended writer p99 "
        f"{writer_at_scale['p99_over_uncontended_median']:.2f}x the "
        f"uncontended median exceeded the {ceiling}x ceiling "
        f"(cpu_count={os.cpu_count()}; single-core hosts use the relaxed "
        "E13_MAX_WRITER_P99_RATIO_1CPU — see module docstring)"
    )


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------


def _print_table(title: str, headers, rows) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(title)
    print("-" * len(title))
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


def main(argv=None) -> int:
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small size, fewer commits (CI smoke; no timing assertions)",
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else SIZES
    repeats = QUICK_REPEATS if args.quick else REPEATS
    with tempfile.TemporaryDirectory() as tmp:
        read_rows, writer_rows, payload = _run_all(
            Path(tmp), sizes, repeats, quick=args.quick
        )
    _print_table(
        f"E13a  read throughput: serving layer ({READERS} threads, shared "
        "caches) vs per-request isolation",
        _E13A_HEADERS,
        read_rows,
    )
    _print_table(
        f"E13b  writer latency under {READERS} paced readers "
        f"({READER_PACE * 1e3:.0f} ms think time)",
        _E13B_HEADERS,
        writer_rows,
    )
    write_json(payload)
    print(f"machine-readable medians written to {JSON_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
