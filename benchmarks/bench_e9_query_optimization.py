"""E9 — Query optimization ablation (paper, slide 19 perspectives).

The matcher ships three optimizations (DESIGN.md §6.4): label-index
candidate pre-filtering, bottom-up semi-join pruning and early join
checking.  The bench toggles each on documents of growing size,
verifying the result sets are identical and measuring the pruning wins.

E9 revisited — the cost-based engine
------------------------------------
The five fixed configurations below are *manual* points in the strategy
space: someone has to know which toggles pay off for a given document
and query.  The :mod:`repro.engine` subsystem subsumes the ablation
flags: it collects document statistics, prices candidate sets and axis
steps, and emits a per-query plan choosing the visit order, the scan
operator, the semi-join prune and the join-check placement — the same
decisions the flags hard-code, now made from data.  ``test_planner_vs_
fixed`` closes the loop: on this bench's workloads the auto-planned
path must never be slower than the worst fixed configuration and must
stay within 10% of the best one, with the plan served from the
warehouse-style plan cache on repeat executions (steady state for the
paper's polling consumers).

Script mode (no pytest plugins needed)::

    PYTHONPATH=src python benchmarks/bench_e9_query_optimization.py [--quick]

measures the steady-state auto-planned path against the fixed
configurations across sizes and writes machine-readable medians —
including the ``trajectory`` entries the CI benchmark-trajectory gate
compares — to ``benchmarks/out/BENCH_E9.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

import pytest

from repro.analysis import counters
from repro.engine import QueryEngine
from repro.tpwj import MatchConfig, find_matches
from repro.trees import RandomTreeConfig
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree, random_query_for

try:
    from conftest import fmt
except ImportError:  # script mode: run outside pytest's rootdir sys.path
    def fmt(value: float, digits: int = 4) -> str:
        return f"{value:.{digits}g}"

OUT_DIR = Path(__file__).parent / "out"
JSON_PATH = OUT_DIR / "BENCH_E9.json"

SIZES = (100, 300, 600, 1200)
QUICK_SIZES = (100, 300)

CONFIGS = {
    "all-on": MatchConfig(),
    "no-label-index": MatchConfig(use_label_index=False),
    "no-semijoin": MatchConfig(use_semijoin_pruning=False),
    "no-early-join": MatchConfig(early_join_check=False),
    "all-off": MatchConfig(
        use_label_index=False, use_semijoin_pruning=False, early_join_check=False
    ),
}


def instance(n_nodes: int, seed: int = 40):
    rng = random.Random(seed)
    doc = random_fuzzy_tree(
        rng,
        FuzzyWorkloadConfig(
            tree=RandomTreeConfig(
                max_nodes=n_nodes,
                max_children=5,
                max_depth=7,
                min_nodes=max(2, n_nodes // 2),
            ),
            n_events=4,
        ),
    )
    pattern = random_query_for(
        rng, doc.root, max_nodes=5, join_probability=0.8, value_test_probability=0.5
    )
    return doc, pattern


@pytest.mark.parametrize("n_nodes", [100, 300, 600])
def test_ablation_table(report, benchmark, n_nodes):
    doc, pattern = instance(n_nodes)

    def run():
        baseline = None
        rows = []
        for name, config in CONFIGS.items():
            counters.reset()
            start = time.perf_counter()
            matches = find_matches(pattern, doc.root, config)
            elapsed = time.perf_counter() - start
            assignments = counters.get("match.assignments")
            if baseline is None:
                baseline = len(matches)
            assert len(matches) == baseline  # optimizations never change results
            rows.append([name, len(matches), int(assignments), fmt(elapsed)])
        counters.reset()
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report.table(
        f"E9a  matcher ablation, {n_nodes}-node document, query {pattern}",
        ["config", "matches", "assignments tried", "seconds"],
        rows,
    )


@pytest.mark.parametrize("config_name", ["all-on", "all-off"])
def test_matcher_benchmark(benchmark, config_name):
    doc, pattern = instance(400, seed=41)
    config = CONFIGS[config_name]
    benchmark(find_matches, pattern, doc.root, config)


def _best_of(callable_, repeats: int = 5) -> float:
    """Minimum wall-clock over *repeats* calls (noise-robust timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


@pytest.mark.parametrize("n_nodes", [100, 300, 600, 1200])
def test_planner_vs_fixed(report, benchmark, n_nodes):
    """E9c — the cost-based engine against every fixed configuration.

    The engine runs in warehouse steady state: statistics collected
    once, the plan built on first execution and served from the plan
    cache afterwards.  Asserts the acceptance envelope — never slower
    than the worst fixed configuration, within 10% of the best.
    """
    doc, pattern = instance(n_nodes)
    engine = QueryEngine(lambda: doc.root)
    reference = len(find_matches(pattern, doc.root))

    def run():
        rows = []
        fixed_times: dict[str, float] = {}
        for name, config in CONFIGS.items():
            elapsed = _best_of(lambda: find_matches(pattern, doc.root, config))
            fixed_times[name] = elapsed
            rows.append([name, reference, fmt(elapsed)])

        matches = engine.find_matches(pattern)  # builds + caches the plan
        assert len(matches) == reference
        auto_time = _best_of(lambda: engine.find_matches(pattern))
        rows.append(["auto-planned", len(matches), fmt(auto_time)])

        best = min(fixed_times.values())
        worst = max(fixed_times.values())
        # Timer-noise guard for sub-millisecond workloads; CI runners
        # are noisy shared machines, so they widen it via E9_TIMING_SLACK.
        slack = float(os.environ.get("E9_TIMING_SLACK", "2.5e-4"))
        assert auto_time <= worst + slack, (
            f"auto-planned path ({auto_time:.6f}s) slower than the worst "
            f"fixed configuration ({worst:.6f}s)"
        )
        assert auto_time <= best * 1.10 + slack, (
            f"auto-planned path ({auto_time:.6f}s) more than 10% behind the "
            f"best fixed configuration ({best:.6f}s)"
        )
        rows.append(["(best fixed)", reference, fmt(best)])
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report.table(
        f"E9c  planner vs fixed strategies, {n_nodes}-node document, "
        f"query {pattern}",
        ["strategy", "matches", "seconds"],
        rows,
    )


def test_plan_cache_serves_repeat_queries(report, benchmark):
    """E9d — repeated queries hit the plan cache (no re-planning cost)."""

    def run():
        doc, pattern = instance(400, seed=43)
        engine = QueryEngine(lambda: doc.root)
        counters.reset()
        engine.find_matches(pattern)
        built_first = counters.get("engine.plans_built")
        hits_first = counters.get("engine.plan_cache_hits")
        engine.find_matches(pattern)
        built_second = counters.get("engine.plans_built")
        hits_second = counters.get("engine.plan_cache_hits")
        counters.reset()
        assert built_second == built_first == 1  # planned exactly once
        assert hits_second == hits_first + 1  # second run: cache hit
        return [[int(built_second), int(hits_second)]]

    rows = benchmark.pedantic(run, rounds=1)
    report.table(
        "E9d  plan cache on a repeated query",
        ["plans built", "cache hits"],
        rows,
    )


def run_planner_medians(sizes, repeats: int = 5):
    """Steady-state engine timings per size, for the script/JSON mode.

    Per size: the best fixed configuration (the strongest manual
    baseline), the warm auto-planned path (plan cached, document walk
    reused — warehouse steady state), and the match count as a sanity
    anchor.
    """
    table_rows = []
    results = []
    for n_nodes in sizes:
        doc, pattern = instance(n_nodes)
        engine = QueryEngine(lambda: doc.root)
        reference = len(find_matches(pattern, doc.root))
        fixed_times = {
            name: _best_of(
                lambda config=config: find_matches(pattern, doc.root, config),
                repeats,
            )
            for name, config in CONFIGS.items()
        }
        matches = engine.find_matches(pattern)  # builds + caches the plan
        assert len(matches) == reference
        auto = _best_of(lambda: engine.find_matches(pattern), repeats)
        best_fixed = min(fixed_times.values())
        table_rows.append(
            [
                n_nodes,
                reference,
                fmt(best_fixed * 1e6),
                fmt(auto * 1e6),
                fmt(best_fixed / auto if auto else float("inf"), 3),
            ]
        )
        results.append(
            {
                "nodes": n_nodes,
                "matches": reference,
                "best_fixed_us": best_fixed * 1e6,
                "auto_planned_us": auto * 1e6,
            }
        )
    return table_rows, results


_E9_SCRIPT_HEADERS = [
    "nodes",
    "matches",
    "best fixed us",
    "auto-planned us",
    "best fixed / auto",
]


def write_json(payload: dict) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("n_nodes", [600, 1200])
def test_topk_streaming_vs_materialize(report, benchmark, tmp_path_factory, n_nodes):
    """E9e — top-k through the session API: streaming vs materializing.

    ``Session.query(...).limit(k)`` pushes the cap into the engine's
    streaming protocol: the backtracking join stops after k emitted
    rows, and per-row probability work is only paid for those k.  The
    materializing path evaluates every match.  On documents of ≥600
    nodes the streamed top-5 must beat full materialization.
    """
    from collections import Counter

    from repro.api import connect

    doc, _ = instance(n_nodes)
    label, occurrences = Counter(
        node.label for node in doc.root.iter()
    ).most_common(1)[0]
    query = f"//{label}"
    path = tmp_path_factory.mktemp("e9e") / f"wh-{n_nodes}"
    with connect(path, create=True, document=doc) as session:
        # Warm-up: plan cached, document walk built — steady state.
        assert len(session.query(query).limit(5).all()) == 5

        def run():
            streamed = _best_of(lambda: session.query(query).limit(5).all())
            materialized = _best_of(lambda: session.query(query).all())
            rows_total = session.query(query).count()
            assert rows_total >= occurrences // 2
            slack = float(os.environ.get("E9_TIMING_SLACK", "2.5e-4"))
            assert streamed <= materialized + slack, (
                f"top-5 streaming ({streamed:.6f}s) did not beat full "
                f"materialization ({materialized:.6f}s) on {n_nodes} nodes"
            )
            speedup = materialized / streamed if streamed > 0 else float("inf")
            return [
                [
                    doc.size(),
                    rows_total,
                    fmt(materialized),
                    fmt(streamed),
                    fmt(speedup, 3),
                ]
            ]

        rows = benchmark.pedantic(run, rounds=1)
    report.table(
        f"E9e  top-k streaming vs materialize, {n_nodes}-node document, "
        f"query {query} limit 5",
        ["nodes", "total rows", "materialize s", "stream-5 s", "speedup"],
        rows,
    )


def test_pruning_wins_grow_with_document(report, benchmark):
    def run():
        rows = []
        for n_nodes in (100, 300, 600, 1000):
            doc, pattern = instance(n_nodes, seed=42)
            counters.reset()
            find_matches(pattern, doc.root, CONFIGS["all-on"])
            on_assignments = counters.get("match.assignments")
            counters.reset()
            find_matches(pattern, doc.root, CONFIGS["all-off"])
            off_assignments = counters.get("match.assignments")
            counters.reset()
            ratio = off_assignments / on_assignments if on_assignments else float("inf")
            rows.append(
                [doc.size(), int(on_assignments), int(off_assignments), fmt(ratio, 3)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report.table(
        "E9b  assignments tried: optimized vs naive matcher",
        ["nodes", "optimized", "naive", "naive/optimized"],
        rows,
    )


# ----------------------------------------------------------------------
# script entry point (machine-readable medians for the trajectory gate)
# ----------------------------------------------------------------------


def _print_table(title: str, headers, rows) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(title)
    print("-" * len(title))
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="E9 steady-state planner medians (script mode)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, fewer repeats (CI smoke; no timing assertions)",
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else SIZES
    repeats = 3 if args.quick else 5
    rows, results = run_planner_medians(sizes, repeats)
    _print_table(
        "E9   steady-state engine vs best fixed configuration",
        _E9_SCRIPT_HEADERS,
        rows,
    )
    write_json(
        {
            "experiment": "E9",
            "metric": "query_us",
            "quick": args.quick,
            "planner": results,
            "trajectory": [
                {
                    "id": f"e9.auto_planned_us.nodes={record['nodes']}",
                    "value": record["auto_planned_us"],
                    "direction": "lower",
                }
                for record in results
            ],
        }
    )
    print(f"machine-readable medians written to {JSON_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
