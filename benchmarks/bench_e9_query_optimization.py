"""E9 — Query optimization ablation (paper, slide 19 perspectives).

The matcher ships three optimizations (DESIGN.md §6.4): label-index
candidate pre-filtering, bottom-up semi-join pruning and early join
checking.  The bench toggles each on documents of growing size,
verifying the result sets are identical and measuring the pruning wins.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.analysis import counters
from repro.tpwj import MatchConfig, find_matches
from repro.trees import RandomTreeConfig
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree, random_query_for

from conftest import fmt

CONFIGS = {
    "all-on": MatchConfig(),
    "no-label-index": MatchConfig(use_label_index=False),
    "no-semijoin": MatchConfig(use_semijoin_pruning=False),
    "no-early-join": MatchConfig(early_join_check=False),
    "all-off": MatchConfig(
        use_label_index=False, use_semijoin_pruning=False, early_join_check=False
    ),
}


def instance(n_nodes: int, seed: int = 40):
    rng = random.Random(seed)
    doc = random_fuzzy_tree(
        rng,
        FuzzyWorkloadConfig(
            tree=RandomTreeConfig(
                max_nodes=n_nodes,
                max_children=5,
                max_depth=7,
                min_nodes=max(2, n_nodes // 2),
            ),
            n_events=4,
        ),
    )
    pattern = random_query_for(
        rng, doc.root, max_nodes=5, join_probability=0.8, value_test_probability=0.5
    )
    return doc, pattern


@pytest.mark.parametrize("n_nodes", [100, 300, 600])
def test_ablation_table(report, benchmark, n_nodes):
    doc, pattern = instance(n_nodes)

    def run():
        baseline = None
        rows = []
        for name, config in CONFIGS.items():
            counters.reset()
            start = time.perf_counter()
            matches = find_matches(pattern, doc.root, config)
            elapsed = time.perf_counter() - start
            assignments = counters.get("match.assignments")
            if baseline is None:
                baseline = len(matches)
            assert len(matches) == baseline  # optimizations never change results
            rows.append([name, len(matches), int(assignments), fmt(elapsed)])
        counters.reset()
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report.table(
        f"E9a  matcher ablation, {n_nodes}-node document, query {pattern}",
        ["config", "matches", "assignments tried", "seconds"],
        rows,
    )


@pytest.mark.parametrize("config_name", ["all-on", "all-off"])
def test_matcher_benchmark(benchmark, config_name):
    doc, pattern = instance(400, seed=41)
    config = CONFIGS[config_name]
    benchmark(find_matches, pattern, doc.root, config)


def test_pruning_wins_grow_with_document(report, benchmark):
    def run():
        rows = []
        for n_nodes in (100, 300, 600, 1000):
            doc, pattern = instance(n_nodes, seed=42)
            counters.reset()
            find_matches(pattern, doc.root, CONFIGS["all-on"])
            on_assignments = counters.get("match.assignments")
            counters.reset()
            find_matches(pattern, doc.root, CONFIGS["all-off"])
            off_assignments = counters.get("match.assignments")
            counters.reset()
            ratio = off_assignments / on_assignments if on_assignments else float("inf")
            rows.append(
                [doc.size(), int(on_assignments), int(off_assignments), fmt(ratio, 3)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1)
    report.table(
        "E9b  assignments tried: optimized vs naive matcher",
        ["nodes", "optimized", "naive", "naive/optimized"],
        rows,
    )
