"""E12 — the probability fast path (slide 13's pipeline, made cheap).

Once matching is planned (PR 1) and streamed (PR 3), the dominant
per-row cost is the probability pipeline: per-match existence
conditions (mapped nodes ∧ all ancestors), DNF absorption over the
matches of an answer, and the Shannon expansion pricing the
disjunction.  This experiment measures what the fast path buys:

* **E12a** — per-answer probability evaluation, *seed pipeline*
  (per-match ancestor walks, quadratic DNF absorption, per-call
  Shannon memo with per-level event recounts — the exact algorithms of
  the seed tree, re-implemented here as the baseline) vs. the *fast
  path* (ancestor-condition index, sorted/bucketed absorption,
  factorized Shannon expansion with incremental counts and the
  engine-scoped memo), across document sizes, with and without
  deletion churn;
* **E12b** — the engine-scoped Shannon cache: per-row cost with the
  memo cleared before every query vs. warm across queries.

Matching and answer-tree construction are *excluded* from the timed
section (identical on both paths): each measured run prices the same
pre-enumerated (match, answer-key) list, and the two paths must agree
on every probability to 1e-12 — checked on every run.

Runs both ways::

    PYTHONPATH=src python -m pytest benchmarks/bench_e12_probability.py \
        -x -q -o python_files="bench_*.py"
    PYTHONPATH=src python benchmarks/bench_e12_probability.py [--quick]

The script form needs no pytest plugins (CI smoke uses ``--quick``)
and always writes machine-readable medians to
``benchmarks/out/BENCH_E12.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import time
from pathlib import Path
from sys import intern as _intern_str

try:
    from conftest import fmt
except ImportError:  # script mode: run outside pytest's rootdir sys.path
    def fmt(value: float, digits: int = 4) -> str:
        return f"{value:.{digits}g}"

from repro.analysis.instrumentation import counters
from repro.core.fuzzy_tree import FuzzyNode
from repro.core.query import match_conditions
from repro.core.update import apply_update
from repro.engine import QueryEngine, StatsDelta
from repro.events import Condition, Dnf, dnf_probability
from repro.tpwj.parser import parse_pattern
from repro.tpwj.result import answer_tree
from repro.trees.random import RandomTreeConfig
from repro.updates.operations import DeleteOperation
from repro.updates.transaction import UpdateTransaction
from repro.workloads import FuzzyWorkloadConfig, random_fuzzy_tree

OUT_DIR = Path(__file__).parent / "out"
JSON_PATH = OUT_DIR / "BENCH_E12.json"

SIZES = (150, 400, 1200)
QUICK_SIZES = (150,)
CHURN = 20
# Quick mode trims sizes and repeats but keeps the per-point workload
# identical (same churn), so the CI trajectory gate can compare a
# quick-mode datapoint against the committed full-mode baseline.
QUICK_CHURN = CHURN
GUARD_WIDTH = 6
REPEATS = 5
QUICK_REPEATS = 2


# ----------------------------------------------------------------------
# Workload: a random document grown by controlled probabilistic deletions
# ----------------------------------------------------------------------


def build_document(n_nodes: int, churn: int, seed: int = 7):
    """A random fuzzy document plus *churn* guard-conditioned deletions.

    The deletion chain is the E5 dependency shape kept at benchmark
    scale: ``churn`` valued ``item`` leaves are scattered through the
    tree and each is deleted under a rotating pair of guard conditions
    with confidence 0.8 — every deletion mints a fresh event and splits
    its target into survivor copies whose conditions accumulate guard
    and confidence literals, which is exactly the state that makes the
    probability pipeline expensive.  Statistics/index deltas are fed to
    the engine as a warehouse commit would.
    """
    rng = random.Random(seed)
    config = FuzzyWorkloadConfig(
        tree=RandomTreeConfig(
            max_nodes=n_nodes,
            min_nodes=max(1, int(n_nodes * 0.9)),
            max_depth=10,
        ),
        n_events=6,
    )
    document = random_fuzzy_tree(rng, config)
    root = document.root
    guards = []
    for i in range(GUARD_WIDTH):
        name = f"g{i}"
        document.events.declare(name, 0.6)
        root.add_child(FuzzyNode("guard", value=name, condition=Condition.of(name)))
        guards.append(name)
    hosts = [node for node in root.iter() if node.value is None]
    for k in range(max(churn, 1)):
        rng.choice(hosts).add_child(FuzzyNode("item", value=f"v{k}"))

    engine = QueryEngine(lambda: document.root)
    for k in range(churn):
        first = guards[k % GUARD_WIDTH]
        second = guards[(k + 1) % GUARD_WIDTH]
        query = parse_pattern(
            f'/{root.label} {{ guard[="{first}"], guard[="{second}"], '
            f'//item[$t="v{k}"] }}'
        )
        transaction = UpdateTransaction(query, [DeleteOperation("t")], 0.8)
        delta = StatsDelta()
        apply_update(document, transaction, delta=delta)
        engine.apply_delta(delta)
    return document, engine


def enumerate_rows(document, engine):
    """(match, interned answer key) pairs for the measured query mix.

    Enumeration and answer-tree construction are identical on both
    pipelines, so they happen once, outside every timed section.
    """
    queries = [
        parse_pattern("//item[$t]"),
        parse_pattern(f"/{document.root.label} {{ guard[$g], //item[$t] }}"),
    ]
    rows = []
    for query in queries:
        for match in engine.find_matches(query):
            key = _intern_str(answer_tree(document.root, match).canonical())
            rows.append((match, key))
    return rows


# ----------------------------------------------------------------------
# The two pipelines under test
# ----------------------------------------------------------------------


def fast_pipeline(document, engine, rows) -> dict[str, float]:
    """Condition → absorption → probability through the fast path."""
    index = engine.condition_index()
    cache = engine.shannon
    events = document.events
    grouped: dict[str, list[Condition]] = {}
    for match, key in rows:
        conditions = match_conditions(match, index=index)
        if not conditions:
            continue
        grouped.setdefault(key, []).extend(conditions)
    return {
        key: dnf_probability(Dnf(conditions), events, cache=cache)
        for key, conditions in grouped.items()
    }


def seed_pipeline(document, engine, rows) -> dict[str, float]:
    """The seed algorithms, re-implemented verbatim as the baseline.

    Per-match ancestor walks, the quadratic two-way absorption the seed
    ``Dnf.__init__`` performed, and a Shannon expansion whose memo dies
    with the call and whose branch event is recounted from every term
    at every recursion level.  (Both pipelines share today's interned
    conditions — the baseline is the seed's *algorithms*, so the
    measured ratio is conservative.)
    """
    events = document.events
    grouped: dict[str, list[Condition]] = {}
    for match, key in rows:
        condition = _seed_match_condition(match)
        if condition is None:
            continue
        grouped.setdefault(key, []).append(condition)
    return {
        key: _seed_dnf_probability(_seed_absorb(conditions), events)
        for key, conditions in grouped.items()
    }


def _seed_match_condition(match):
    literals: set = set()
    seen: set[int] = set()
    for node in match.nodes():
        for walk in node.ancestors(include_self=True):
            if id(walk) in seen:
                continue
            seen.add(id(walk))
            literals |= walk.condition.literals
    combined = Condition(frozenset(literals), allow_inconsistent=True)
    return combined if combined.is_consistent else None


def _seed_absorb(terms):
    kept: list[Condition] = []
    for term in terms:
        if not term.is_consistent:
            continue
        if any(term.implies(existing) for existing in kept):
            continue
        kept = [existing for existing in kept if not existing.implies(term)]
        kept.append(term)
    return tuple(kept)


def _seed_dnf_probability(terms, table) -> float:
    cache: dict[frozenset, float] = {}

    def solve(term_set: frozenset) -> float:
        if not term_set:
            return 0.0
        if any(term.is_true for term in term_set):
            return 1.0
        cached = cache.get(term_set)
        if cached is not None:
            return cached
        counts: dict[str, int] = {}
        for term in term_set:
            for event in term.events():
                counts[event] = counts.get(event, 0) + 1
        event = max(sorted(counts), key=lambda name: counts[name])
        p = table.probability(event)
        result = 0.0
        for truth, weight in ((True, p), (False, 1.0 - p)):
            if weight == 0.0:
                continue
            branch = frozenset(
                restricted
                for term in term_set
                if (restricted := term.restrict(event, truth)) is not None
            )
            result += weight * solve(branch)
        cache[term_set] = result
        return result

    return solve(frozenset(terms))


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------


def _check_agreement(fast: dict, seed: dict, context: str) -> None:
    assert fast.keys() == seed.keys(), f"{context}: answer sets diverge"
    for key, probability in fast.items():
        assert abs(probability - seed[key]) <= 1e-12, (
            f"{context}: probability diverges on {key!r}: "
            f"fast={probability!r} seed={seed[key]!r}"
        )


def _best_median(pipeline, document, engine, rows, repeats: int, inner: int) -> float:
    """Best-of-*repeats* median of per-run seconds for *inner* runs."""
    medians = []
    for _ in range(repeats):
        timings = []
        for _ in range(inner):
            start = time.perf_counter()
            pipeline(document, engine, rows)
            timings.append(time.perf_counter() - start)
        medians.append(statistics.median(timings))
    return min(medians)


def run_pipeline_comparison(sizes, churn: int, repeats: int):
    """E12a rows: [nodes, churned size, rows, seed µs/row, fast µs/row, speedup]."""
    table_rows = []
    results = []
    for n_nodes in sizes:
        document, engine = build_document(n_nodes, churn)
        rows = enumerate_rows(document, engine)
        with counters.disabled():
            _check_agreement(
                fast_pipeline(document, engine, rows),
                seed_pipeline(document, engine, rows),
                f"nodes={n_nodes} churn={churn}",
            )
            fast = _best_median(fast_pipeline, document, engine, rows, repeats, 3)
            seed = _best_median(seed_pipeline, document, engine, rows, repeats, 3)
        per_row_fast = fast / len(rows) * 1e6
        per_row_seed = seed / len(rows) * 1e6
        speedup = seed / fast if fast else float("inf")
        table_rows.append(
            [
                n_nodes,
                document.size(),
                len(rows),
                fmt(per_row_seed),
                fmt(per_row_fast),
                fmt(speedup, 3),
            ]
        )
        results.append(
            {
                "nodes": n_nodes,
                "churn": churn,
                "document_size": document.size(),
                "rows": len(rows),
                "seed_us_per_row": per_row_seed,
                "fast_us_per_row": per_row_fast,
                "speedup": speedup,
            }
        )
    return table_rows, results


def run_cache_scope(sizes, churn: int, repeats: int):
    """E12b rows: [nodes, cold µs/row, warm µs/row, ratio]."""
    table_rows = []
    results = []
    for n_nodes in sizes:
        document, engine = build_document(n_nodes, churn)
        rows = enumerate_rows(document, engine)

        def cold(document, engine, rows):
            engine.shannon.clear()
            return fast_pipeline(document, engine, rows)

        with counters.disabled():
            cold_s = _best_median(cold, document, engine, rows, repeats, 3)
            fast_pipeline(document, engine, rows)  # warm the memo
            warm_s = _best_median(fast_pipeline, document, engine, rows, repeats, 3)
        per_row_cold = cold_s / len(rows) * 1e6
        per_row_warm = warm_s / len(rows) * 1e6
        table_rows.append(
            [
                n_nodes,
                fmt(per_row_cold),
                fmt(per_row_warm),
                fmt(per_row_cold / per_row_warm if per_row_warm else float("inf"), 3),
            ]
        )
        results.append(
            {
                "nodes": n_nodes,
                "churn": churn,
                "cold_us_per_row": per_row_cold,
                "warm_us_per_row": per_row_warm,
            }
        )
    return table_rows, results


def _trajectory(pipeline_results) -> list[dict]:
    """The medians the CI trajectory gate compares across commits."""
    return [
        {
            "id": (
                f"e12.fast_us_per_row.nodes={record['nodes']}"
                f".churn={record['churn']}"
            ),
            "value": record["fast_us_per_row"],
            "direction": "lower",
        }
        for record in pipeline_results
    ]


def write_json(payload: dict) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    payload = dict(payload)
    payload["trajectory"] = _trajectory(payload.get("pipeline", ()))
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


_E12A_HEADERS = [
    "nodes",
    "churned size",
    "rows",
    "seed us/row",
    "fast us/row",
    "speedup",
]
_E12B_HEADERS = ["nodes", "cold us/row", "warm us/row", "cold/warm"]


def _min_speedup() -> float:
    # The acceptance floor (3x at 1200 nodes under churn) holds with
    # margin on a dev machine; shared CI runners are noisy, so the
    # tripwire is overridable.
    return float(os.environ.get("E12_MIN_SPEEDUP", "3.0"))


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_probability_pipeline_speedup(report, benchmark):
    churned, churned_json = benchmark.pedantic(
        lambda: run_pipeline_comparison(SIZES, CHURN, REPEATS), rounds=1
    )
    report.table(
        f"E12a  per-answer probability: seed pipeline vs fast path "
        f"({CHURN} deletions)",
        _E12A_HEADERS,
        churned,
    )
    clean, clean_json = run_pipeline_comparison(SIZES, 0, REPEATS)
    report.table(
        "E12a' per-answer probability: seed pipeline vs fast path (no churn)",
        _E12A_HEADERS,
        clean,
    )
    write_json(
        {
            "experiment": "E12",
            "metric": "per_row_probability_us",
            "quick": False,
            "pipeline": churned_json + clean_json,
        }
    )
    at_scale = churned_json[-1]
    assert at_scale["speedup"] >= _min_speedup(), (
        f"fast-path speedup {at_scale['speedup']:.2f}x at "
        f"{at_scale['nodes']} nodes fell below the {_min_speedup()}x floor"
    )


def test_engine_scoped_cache(report, benchmark):
    rows, _ = benchmark.pedantic(
        lambda: run_cache_scope(SIZES, CHURN, REPEATS), rounds=1
    )
    report.table("E12b  shannon memo scope: cleared per query vs engine-owned", _E12B_HEADERS, rows)
    for row in rows:
        # A warm engine-scoped memo must never lose to a cold one.
        assert float(row[2]) <= float(row[1]) * 1.25


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------


def _print_table(title: str, headers, rows) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(title)
    print("-" * len(title))
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, light churn (CI smoke; no timing assertions)",
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else SIZES
    churn = QUICK_CHURN if args.quick else CHURN
    repeats = QUICK_REPEATS if args.quick else REPEATS

    churned, churned_json = run_pipeline_comparison(sizes, churn, repeats)
    _print_table(
        f"E12a  per-answer probability: seed pipeline vs fast path "
        f"({churn} deletions)",
        _E12A_HEADERS,
        churned,
    )
    clean, clean_json = run_pipeline_comparison(sizes, 0, repeats)
    _print_table(
        "E12a' per-answer probability: seed pipeline vs fast path (no churn)",
        _E12A_HEADERS,
        clean,
    )
    cache_rows, cache_json = run_cache_scope(sizes, churn, repeats)
    _print_table(
        "E12b  shannon memo scope: cleared per query vs engine-owned",
        _E12B_HEADERS,
        cache_rows,
    )
    write_json(
        {
            "experiment": "E12",
            "metric": "per_row_probability_us",
            "quick": args.quick,
            "pipeline": churned_json + clean_json,
            "cache_scope": cache_json,
        }
    )
    print(f"machine-readable medians written to {JSON_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
