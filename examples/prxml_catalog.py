"""PrXML front-end and aggregate queries (extension features).

Builds a product catalog with ``ind``/``mux`` distributional nodes —
the surface syntax popularised by the probabilistic-XML line of work
that followed this paper — compiles it into the paper's fuzzy-tree
representation, and asks aggregate questions: expected result counts
and the full distribution of the number of matches.

Run:  python examples/prxml_catalog.py
"""

import tempfile
from pathlib import Path

import repro
from repro.core import (
    expected_matches,
    match_count_distribution,
    probability_at_least,
    to_possible_worlds,
)
from repro.prxml import PDocument, PInd, PMux, PRegular, compile_to_fuzzy


def build_catalog() -> PDocument:
    """A catalog whose entries and prices are uncertain.

    * each entry exists independently (``ind``) — the extractor that
      produced it had some confidence;
    * each present entry has exactly one of several candidate prices
      (``mux``) — cleaning proposed alternatives.
    """
    root = PRegular("catalog")
    products = [
        ("laptop", 0.9, [("999", 0.7), ("1099", 0.3)]),
        ("phone", 0.8, [("599", 0.5), ("649", 0.5)]),
        ("tablet", 0.4, [("399", 1.0)]),
    ]
    for sku, exists_probability, price_options in products:
        entry = PRegular("entry")
        entry.add_child(PRegular("sku", sku))
        price_mux = PMux()
        for price, price_probability in price_options:
            price_mux.add(PRegular("price", price), price_probability)
        entry.add_child(price_mux)
        ind = PInd()
        ind.add(entry, exists_probability)
        root.add_child(ind)
    return PDocument(root)


def main() -> None:
    document = build_catalog()
    print(f"PrXML document: {document}")

    fuzzy = compile_to_fuzzy(document)
    print(f"Compiled fuzzy tree: {fuzzy}")
    print(fuzzy.root.pretty())
    print("Events:", fuzzy.events)

    # The compiled document is a regular fuzzy tree: every engine works.
    worlds = to_possible_worlds(fuzzy)
    print(f"\n{len(worlds)} possible worlds; the three most likely:")
    for world in worlds.worlds[:3]:
        print(f"  P = {world.probability:.4f}  {world.tree.canonical()}")

    # The compiled document drops straight into the session API.
    pattern = (
        repro.pattern("catalog", anchored=True)
        .child(repro.pattern("entry").child("sku").child("price"))
        .build()
    )
    with tempfile.TemporaryDirectory() as tmp:
        with repro.connect(
            Path(tmp) / "catalog-wh", create=True, document=fuzzy
        ) as session:
            print(f"\nQuery {pattern}:")
            for answer in session.query(pattern).answers():
                entry = answer.tree.children[0]
                fields = {n.label: n.value for n in entry.iter() if n.value}
                print(
                    f"  P = {answer.probability:.4f}  sku={fields.get('sku'):8s}"
                    f" price={fields.get('price')}"
                )

    # Aggregates: how many catalog entries do we believe in?
    entries = repro.pattern("catalog", anchored=True).child("entry").build()
    print(f"\nExpected number of entries: {expected_matches(fuzzy, entries):.3f}")
    print("Distribution of the entry count:")
    for count, probability in match_count_distribution(fuzzy, entries).items():
        print(f"  P(count = {count}) = {probability:.4f}")
    print(
        f"P(at least 2 entries) = {probability_at_least(fuzzy, entries, 2):.4f}"
    )


if __name__ == "__main__":
    main()
