"""Probabilistic data cleaning: uncertain deduplication (slide 2).

A catalog arrives with duplicate entries.  A deduplication module is
*mostly* right — so instead of destructively deleting, it issues
probabilistic deletions.  The document keeps both outcomes weighted by
the module's confidence; simplification then compacts the survivor
copies the deletions produced (the slide-14 growth, tamed by the
slide-19 simplification perspective).

Run:  python examples/data_cleaning.py
"""

from repro import apply_update, query_fuzzy_tree, simplify, to_possible_worlds
from repro.workloads import CleaningScenario


def main() -> None:
    scenario = CleaningScenario(seed=7, n_products=4, duplicate_rate=1.0)
    doc = scenario.initial_document()

    print("Dirty catalog (every product duplicated):")
    print(doc.root.pretty())

    # Small documents allow exact world counting.
    print(f"\nWorlds before cleaning: {len(to_possible_worlds(doc))}")

    print("\nDeduplication stream:")
    for tx in scenario.stream(5):
        report = apply_update(doc, tx)
        print(
            f"  [{tx.confidence:4.2f}] {tx.query} "
            f"-> {report.deletion_targets} targets, "
            f"{report.survivor_copies} survivor copies"
        )

    print(
        f"\nAfter cleaning: {doc.size()} nodes, "
        f"{doc.condition_literal_count()} condition literals "
        f"(deletions grow the tree — slide 14)"
    )

    before = to_possible_worlds(doc)
    report = simplify(doc)
    after = to_possible_worlds(doc)
    assert after.same_distribution(before, 1e-9)
    print(
        f"Simplified to {doc.size()} nodes / "
        f"{doc.condition_literal_count()} literals "
        f"(distribution unchanged — checked exactly)"
    )

    print("\nHow confident are we that each entry is still there?")
    for answer in query_fuzzy_tree(doc, scenario.query_mix()[0]):
        entry = answer.tree.children[0]
        fields = {n.label: n.value for n in entry.iter() if n.value}
        print(
            f"  P = {answer.probability:5.3f}   sku={fields.get('sku', '?'):8s} "
            f"price={fields.get('price', '?')}"
        )


if __name__ == "__main__":
    main()
