"""Probabilistic data cleaning: uncertain deduplication (slide 2).

A catalog arrives with duplicate entries.  A deduplication module is
*mostly* right — so instead of destructively deleting, it issues
probabilistic deletions through a session.  The document keeps both
outcomes weighted by the module's confidence; simplification then
compacts the survivor copies the deletions produced (the slide-14
growth, tamed by the slide-19 simplification perspective).

Run:  python examples/data_cleaning.py
"""

import tempfile
from pathlib import Path

import repro
from repro.core import to_possible_worlds
from repro.workloads import CleaningScenario


def main() -> None:
    scenario = CleaningScenario(seed=7, n_products=4, duplicate_rate=1.0)

    with tempfile.TemporaryDirectory() as tmp:
        with repro.connect(
            Path(tmp) / "catalog-wh",
            create=True,
            document=scenario.initial_document(),
        ) as session:
            print("Dirty catalog (every product duplicated):")
            print(session.document.root.pretty())

            # Small documents allow exact world counting.
            worlds_before = len(to_possible_worlds(session.document))
            print(f"\nWorlds before cleaning: {worlds_before}")

            print("\nDeduplication stream:")
            for tx in scenario.stream(5):
                report = session.update(tx)
                print(
                    f"  [{tx.confidence:4.2f}] {tx.query} "
                    f"-> {report.deletion_targets} targets, "
                    f"{report.survivor_copies} survivor copies"
                )

            stats = session.stats()
            print(
                f"\nAfter cleaning: {stats['nodes']} nodes, "
                f"{stats['condition_literals']} condition literals "
                f"(deletions grow the tree — slide 14)"
            )

            before = to_possible_worlds(session.document)
            session.simplify()
            after = to_possible_worlds(session.document)
            assert after.same_distribution(before, 1e-9)
            stats = session.stats()
            print(
                f"Simplified to {stats['nodes']} nodes / "
                f"{stats['condition_literals']} literals "
                f"(distribution unchanged — checked exactly)"
            )

            print("\nHow confident are we that each entry is still there?")
            for answer in session.query(scenario.query_mix()[0]).answers():
                entry = answer.tree.children[0]
                fields = {n.label: n.value for n in entry.iter() if n.value}
                print(
                    f"  P = {answer.probability:5.3f}   "
                    f"sku={fields.get('sku', '?'):8s} "
                    f"price={fields.get('price', '?')}"
                )


if __name__ == "__main__":
    main()
