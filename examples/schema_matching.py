"""Schema matching with scored correspondences (slide 2).

A matcher aligning a source categorisation with a target taxonomy
produces correspondences with scores — classic imprecise output.  Each
verdict becomes a probabilistic insertion committed through a session;
the warehouse then answers "which alignments do we believe, and how
much?", and exact evaluation is cross-checked against Monte-Carlo
sampling.

Run:  python examples/schema_matching.py
"""

import random
import tempfile
from pathlib import Path

import repro
from repro.core import estimate_query
from repro.workloads import MatchingScenario


def main() -> None:
    scenario = MatchingScenario(seed=13)

    with tempfile.TemporaryDirectory() as tmp:
        with repro.connect(
            Path(tmp) / "schema-wh",
            create=True,
            document=scenario.initial_document(),
        ) as session:
            print("Schema document:")
            print(session.document.root.pretty())

            print("\nMatcher verdicts (batched into one commit):")
            with session.batch() as batch:
                for tx in scenario.stream(6):
                    batch.update(tx)
                    insert = tx.insertions[0]
                    pair = {n.label: n.value for n in insert.subtree.iter() if n.value}
                    print(
                        f"  [{tx.confidence:4.2f}]  {pair.get('from', '?'):12s} -> "
                        f"{pair.get('to', '?')}"
                    )

            pattern = scenario.query_mix()[0]
            print(f"\nExact evaluation of {pattern}:")
            exact = session.query(pattern).answers()
            for answer in exact:
                match = next(n for n in answer.tree.iter() if n.label == "match")
                pair = {n.label: n.value for n in match.iter() if n.value}
                print(
                    f"  P = {answer.probability:5.3f}   "
                    f"{pair.get('from', '?'):12s} -> {pair.get('to', '?')}"
                )

            print("\nMonte-Carlo cross-check (2000 samples):")
            estimates = estimate_query(
                session.document, pattern, samples=2000, rng=random.Random(0)
            )
            exact_by_tree = {a.tree.canonical(): a.probability for a in exact}
            for estimate in estimates:
                truth = exact_by_tree.get(estimate.tree.canonical(), 0.0)
                print(
                    f"  est = {estimate.probability:5.3f} ± {estimate.stderr:5.3f}   "
                    f"exact = {truth:5.3f}"
                )


if __name__ == "__main__":
    main()
