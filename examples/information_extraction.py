"""Information extraction into a probabilistic warehouse (slides 2–3).

The paper's motivating pipeline: extraction modules emit facts with
confidences; the warehouse keeps every uncertain fact side by side;
queries return answers ranked by probability.  This example runs an
IE module stream against a directory of people, shows conflicting
facts coexisting, and queries the result.

Run:  python examples/information_extraction.py
"""

import tempfile
from pathlib import Path

from repro.warehouse import Warehouse
from repro.workloads import ExtractionScenario


def main() -> None:
    scenario = ExtractionScenario(seed=42, n_people=5)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "people-warehouse"
        with Warehouse.create(path, scenario.initial_document()) as wh:
            print(f"Created warehouse at {path}")
            print(f"Initial document: {wh.stats()['nodes']} nodes\n")

            # The module stream: every transaction carries a confidence.
            print("Module stream (first 8 shown):")
            for index, tx in enumerate(scenario.stream(40)):
                if index < 8:
                    ops = ", ".join(type(op).__name__ for op in tx.operations)
                    print(f"  [{tx.confidence:4.2f}]  {tx.query}  ({ops})")
                wh.update(tx)

            stats = wh.stats()
            print(
                f"\nAfter 40 probabilistic updates: {stats['nodes']} nodes, "
                f"{stats['used_events']} live events, "
                f"{stats['log_entries']} log entries\n"
            )

            # Query: who has an email, and how sure are we?
            print("Query: /directory { person { name, email } }")
            answers = wh.query("/directory { person { name, email } }")
            for answer in answers[:6]:
                person = answer.tree.children[0]
                fields = {n.label: n.value for n in person.iter() if n.value}
                print(
                    f"  P = {answer.probability:5.3f}   "
                    f"{fields.get('name', '?'):8s} {fields.get('email', '')}"
                )

            # Conflicting facts coexist: several phones per person may
            # be present, each under its own event.
            print("\nQuery: /directory { person { name, phone } }")
            for answer in wh.query("/directory { person { name, phone } }")[:6]:
                person = answer.tree.children[0]
                fields = {n.label: n.value for n in person.iter() if n.value}
                print(
                    f"  P = {answer.probability:5.3f}   "
                    f"{fields.get('name', '?'):8s} {fields.get('phone', '')}"
                )

            # Housekeeping: simplification keeps the store compact.
            report = wh.simplify()
            print(
                f"\nSimplified: {report.nodes_before} -> {report.nodes_after} nodes, "
                f"{report.collected_events} dead events collected"
            )


if __name__ == "__main__":
    main()
