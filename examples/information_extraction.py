"""Information extraction into a probabilistic warehouse (slides 2–3).

The paper's motivating pipeline: extraction modules emit facts with
confidences; the warehouse keeps every uncertain fact side by side;
queries return answers ranked by probability.  This example connects a
session, runs an IE module stream against a directory of people, shows
conflicting facts coexisting, streams a top-k query lazily, and asks
for an answer's provenance.

Run:  python examples/information_extraction.py
"""

import tempfile
from pathlib import Path

import repro
from repro.workloads import ExtractionScenario


def main() -> None:
    scenario = ExtractionScenario(seed=42, n_people=5)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "people-warehouse"
        with repro.connect(
            path, create=True, document=scenario.initial_document()
        ) as session:
            print(f"Connected session on {path}")
            print(f"Initial document: {session.stats()['nodes']} nodes\n")

            # The module stream: every transaction carries a confidence.
            # Batching persists all 40 as a handful of commits.
            print("Module stream (first 8 shown):")
            with session.batch() as batch:
                for index, tx in enumerate(scenario.stream(40)):
                    if index < 8:
                        ops = ", ".join(type(op).__name__ for op in tx.operations)
                        print(f"  [{tx.confidence:4.2f}]  {tx.query}  ({ops})")
                    batch.update(tx)

            stats = session.stats()
            print(
                f"\nAfter 40 probabilistic updates (1 batched commit): "
                f"{stats['nodes']} nodes, {stats['used_events']} live events, "
                f"{stats['log_entries']} log entries\n"
            )

            # Query: who has an email, and how sure are we?  Ranked
            # aggregation, exactly the paper's answer semantics.
            email_query = repro.pattern("directory", anchored=True).child(
                repro.pattern("person").child("name").child("email")
            )
            print(f"Query {email_query}:")
            for answer in session.query(email_query).answers()[:6]:
                person = answer.tree.children[0]
                fields = {n.label: n.value for n in person.iter() if n.value}
                print(
                    f"  P = {answer.probability:5.3f}   "
                    f"{fields.get('name', '?'):8s} {fields.get('email', '')}"
                )

            # Conflicting facts coexist: several phones per person may be
            # present, each under its own event.  Stream just the first
            # few rows — the engine stops matching once we have them.
            print("\nFirst 6 phone rows (streamed, match order):")
            for row in session.query("/directory { person { name, phone } }").limit(6):
                person = row.tree.children[0]
                fields = {n.label: n.value for n in person.iter() if n.value}
                print(
                    f"  P = {row.probability:5.3f}   "
                    f"{fields.get('name', '?'):8s} {fields.get('phone', '')}"
                )

            # Provenance: which module utterance created this fact?
            row = session.query("//email").first()
            if row is not None:
                origin = row.explain()[0]
                entry = origin["origin"]
                print(
                    f"\nProvenance of the first email row: event "
                    f"{origin['event']} (P={origin['probability']:.2f}) minted "
                    f"by commit #{entry['sequence']}"
                    if entry
                    else "\nFirst email predates the warehouse"
                )

            # Housekeeping: simplification keeps the store compact.
            report = session.simplify()
            print(
                f"\nSimplified: {report.nodes_before} -> {report.nodes_after} nodes, "
                f"{report.collected_events} dead events collected"
            )


if __name__ == "__main__":
    main()
