"""Serving over HTTP: an end-to-end tour of the network front end.

Creates a small warehouse, starts the asyncio HTTP/JSON server on a
background thread (``ServerThread`` — the in-process equivalent of
``python -m repro serve WH --port 8080``), then speaks plain HTTP/1.1
to it with the stdlib ``http.client``:

1. ``GET /healthz``          — liveness.
2. ``POST /update``          — an XUpdate transaction with a confidence.
3. ``POST /query``           — TPWJ pattern, ``limit`` and a deadline;
   the body is byte-identical to encoding the same rows in process.
4. ``GET /stats``            — warehouse statistics as JSON.
5. ``GET /metrics``          — Prometheus text exposition.
6. Graceful drain            — stop, finish in flight, close the store.

Run:  PYTHONPATH=src python examples/serve_client.py
"""

import http.client
import json
import tempfile
from pathlib import Path

import repro
from repro import tree
from repro.serve.http import ServerThread

XUPDATE = """\
<xu:modifications xmlns:xu="urn:repro:xupdate"
                  query="/directory[$d]">
  <xu:insert anchor="d">
    <person><name>Dana</name><email>dana@example.org</email></person>
  </xu:insert>
</xu:modifications>
"""


def request(port, method, path, payload=None):
    """One HTTP exchange; returns (status, parsed-or-raw body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        raw = response.read()
        if response.getheader("Content-Type", "").startswith("application/json"):
            return response.status, json.loads(raw)
        return response.status, raw.decode("utf-8", "replace")
    finally:
        conn.close()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "people-wh"
        with repro.connect(path, create=True, root="directory") as session:
            for name, email in [
                ("Alice", "alice@example.org"),
                ("Bob", "bob@example.org"),
            ]:
                session.update(
                    repro.update(
                        repro.pattern("directory", variable="d", anchored=True)
                    )
                    .insert("d", tree("person", tree("name", name), tree("email", email)))
                    .confidence(0.9)
                )

        # ServerThread accepts a warehouse path (it opens and owns the
        # session) and runs the asyncio server on a private event loop.
        # ``port=0`` picks a free port — read it back from the handle.
        with ServerThread(path, port=0, workers=2, queue_depth=8) as server:
            print(f"serving on {server.url}")

            status, body = request(server.port, "GET", "/healthz")
            print(f"\nGET /healthz -> {status}: {body}")

            status, body = request(
                server.port,
                "POST",
                "/update",
                {"xupdate": XUPDATE, "confidence": 0.75},
            )
            print(f"\nPOST /update -> {status}")
            print(json.dumps(body, indent=2))

            status, body = request(
                server.port,
                "POST",
                "/query",
                {"pattern": "//person { email }", "limit": 5, "timeout_ms": 2000},
            )
            print(f"\nPOST /query -> {status} ({body['count']} rows)")
            for row in body["rows"]:
                print(f"  p={row['probability']:.3f}  {row['tree']}")

            status, body = request(server.port, "GET", "/stats")
            print(f"\nGET /stats -> {status}")
            print(json.dumps(body, indent=2))

            status, body = request(server.port, "GET", "/metrics")
            served = [
                line
                for line in body.splitlines()
                if line.startswith("repro_http_requests_total")
            ]
            print(f"\nGET /metrics -> {status}: {served[0]}")

        # Leaving the ``with`` block drains gracefully: in-flight
        # responses finish, the pool shuts down, the warehouse closes
        # with a snapshot — the update above is durable on disk.
        with repro.connect(path) as session:
            names = sorted(
                row.tree.canonical()
                for row in session.query("//person { name }")
            )
            print(f"\nafter drain, {len(names)} persons on disk:")
            for name in names:
                print(f"  {name}")


if __name__ == "__main__":
    main()
