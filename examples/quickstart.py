"""Quickstart: the paper's worked examples through the session API.

Builds the slide-12 fuzzy tree, connects a session on a warehouse
holding it, runs a TPWJ query three ways (streamed rows, ranked
answers, possible-worlds cross-check), replays the slide-15 conditional
replacement with the fluent update builder, and shows a
snapshot-isolated reader observing a consistent state across a commit.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import repro
from repro import Condition, EventTable, FuzzyNode, FuzzyTree, tree
from repro.pworlds import query_possible_worlds
from repro.core import to_possible_worlds


def slide12_document() -> FuzzyTree:
    """The fuzzy tree of slide 12: A { B[w1,¬w2], C { D[w2] } }."""
    events = EventTable({"w1": 0.8, "w2": 0.7})
    root = FuzzyNode(
        "A",
        children=[
            FuzzyNode("B", condition=Condition.of("w1", "!w2")),
            FuzzyNode("C", children=[FuzzyNode("D", condition=Condition.of("w2"))]),
        ],
    )
    return FuzzyTree(root, events)


def main() -> None:
    doc = slide12_document()
    print("The fuzzy document:")
    print(doc.root.pretty())
    print("\nEvent table:", doc.events)

    # ------------------------------------------------------------------
    # 1. Its possible-worlds semantics: three worlds, as on the slide.
    # ------------------------------------------------------------------
    worlds = to_possible_worlds(doc)
    print("\nPossible worlds:")
    for world in worlds:
        print(f"  P = {world.probability:.2f}   {world.tree.canonical()}")

    with tempfile.TemporaryDirectory() as tmp:
        # --------------------------------------------------------------
        # 2. Connect a session: one coherent handle for queries/updates.
        # --------------------------------------------------------------
        with repro.connect(Path(tmp) / "wh", create=True, document=doc) as session:
            # A TPWJ query, built fluently (compiles to the same Pattern
            # the text syntax "//D" parses to) and streamed lazily.
            query = repro.pattern("D")
            print(f"\nQuery //{query}:")
            for row in session.query(query):
                print(f"  P = {row.probability:.2f}   {row.tree.canonical()}")

            # The same query through the possible-worlds semantics agrees
            # (the slide-13 commutation theorem).
            pattern = query.build()
            via_worlds = query_possible_worlds(worlds, pattern)
            first = session.query(pattern).first()
            assert via_worlds.worlds[0].probability == first.probability
            print("  (identical through the possible-worlds semantics)")

        # --------------------------------------------------------------
        # 3. A probabilistic update (slide 15): replace C by D if B is
        #    present, with confidence 0.9 — via the update builder.
        # --------------------------------------------------------------
        slide15_doc = FuzzyTree(
            FuzzyNode(
                "A",
                children=[
                    FuzzyNode("B", condition=Condition.of("w1")),
                    FuzzyNode("C", condition=Condition.of("w2")),
                ],
            ),
            EventTable({"w1": 0.8, "w2": 0.7}),
        )
        with repro.connect(
            Path(tmp) / "wh15", create=True, document=slide15_doc
        ) as session:
            replacement = (
                repro.update(
                    repro.pattern("A", variable="a", anchored=True)
                    .child("B")
                    .child("C", variable="c")
                )
                .delete("c")
                .insert("a", tree("D"))
                .confidence(0.9)
            )
            report = session.update(replacement)
            print("\nAfter the slide-15 conditional replacement:")
            print(session.document.root.pretty())
            print("Event table:", session.document.events)
            print(
                f"(matches: {report.matches}, survivor copies: "
                f"{report.survivor_copies}, confidence event: "
                f"{report.confidence_event})"
            )

            # --------------------------------------------------------------
            # 4. Snapshot isolation: a pinned reader is unaffected by a
            #    writer committing behind its back.
            # --------------------------------------------------------------
            with session.snapshot() as snapshot:
                before = [r.tree.canonical() for r in snapshot.query("//D")]
                session.update(
                    repro.update(repro.pattern("A", variable="a", anchored=True))
                    .insert("a", tree("D"))
                    .confidence(0.5)
                )
                after = [r.tree.canonical() for r in snapshot.query("//D")]
                live = len(session.query("//D").all())
            assert before == after
            print(
                f"\nSnapshot pinned at seq {snapshot.sequence}: saw "
                f"{len(before)} D-answers before and after the commit "
                f"(live session sees {live})"
            )


if __name__ == "__main__":
    main()
