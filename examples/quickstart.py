"""Quickstart: the paper's worked examples in a dozen lines each.

Builds the slide-12 fuzzy tree, inspects its possible worlds, runs a
TPWJ query both ways (direct fuzzy evaluation and via the worlds
semantics), then replays the slide-15 conditional replacement.

Run:  python examples/quickstart.py
"""

from repro import (
    Condition,
    DeleteOperation,
    EventTable,
    FuzzyNode,
    FuzzyTree,
    InsertOperation,
    UpdateTransaction,
    apply_update,
    parse_pattern,
    query_fuzzy_tree,
    query_possible_worlds,
    to_possible_worlds,
)
from repro.trees import tree


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A fuzzy tree (slide 12): nodes guarded by event conditions.
    # ------------------------------------------------------------------
    events = EventTable({"w1": 0.8, "w2": 0.7})
    root = FuzzyNode(
        "A",
        children=[
            FuzzyNode("B", condition=Condition.of("w1", "!w2")),
            FuzzyNode("C", children=[FuzzyNode("D", condition=Condition.of("w2"))]),
        ],
    )
    doc = FuzzyTree(root, events)
    print("The fuzzy document:")
    print(doc.root.pretty())
    print("\nEvent table:", doc.events)

    # ------------------------------------------------------------------
    # 2. Its possible-worlds semantics: three worlds, as on the slide.
    # ------------------------------------------------------------------
    worlds = to_possible_worlds(doc)
    print("\nPossible worlds:")
    for world in worlds:
        print(f"  P = {world.probability:.2f}   {world.tree.canonical()}")

    # ------------------------------------------------------------------
    # 3. A TPWJ query, evaluated directly on the fuzzy tree.
    # ------------------------------------------------------------------
    pattern = parse_pattern("//D")
    print(f"\nQuery {pattern}:")
    for answer in query_fuzzy_tree(doc, pattern):
        print(f"  P = {answer.probability:.2f}   {answer.tree.canonical()}")

    # The same query through the possible-worlds semantics agrees
    # (the slide-13 commutation theorem).
    via_worlds = query_possible_worlds(worlds, pattern)
    assert via_worlds.worlds[0].probability == next(
        a.probability for a in query_fuzzy_tree(doc, pattern)
    )
    print("  (identical through the possible-worlds semantics)")

    # ------------------------------------------------------------------
    # 4. A probabilistic update (slide 15): replace C by D if B is
    #    present, with confidence 0.9.
    # ------------------------------------------------------------------
    events = EventTable({"w1": 0.8, "w2": 0.7})
    doc = FuzzyTree(
        FuzzyNode(
            "A",
            children=[
                FuzzyNode("B", condition=Condition.of("w1")),
                FuzzyNode("C", condition=Condition.of("w2")),
            ],
        ),
        events,
    )
    transaction = UpdateTransaction(
        parse_pattern("/A[$a] { B, C[$c] }"),
        [DeleteOperation("c"), InsertOperation("a", tree("D"))],
        confidence=0.9,
    )
    report = apply_update(doc, transaction)
    print("\nAfter the slide-15 conditional replacement:")
    print(doc.root.pretty())
    print("Event table:", doc.events)
    print(
        f"(matches: {report.matches}, survivor copies: {report.survivor_copies}, "
        f"confidence event: {report.confidence_event})"
    )


if __name__ == "__main__":
    main()
